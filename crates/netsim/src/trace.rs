//! Lightweight event tracing for protocol debugging.
//!
//! A [`Trace`] is a bounded ring of human-readable records. It exists so
//! that protocol simulations and integration tests can assert on the exact
//! sequence of protocol actions ("the sender NACK-promoted key 7 before
//! retransmitting it") without coupling the protocol code to any logging
//! framework. Tracing is off by default and costs one branch per call.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One traced protocol action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the action.
    pub at: SimTime,
    /// A short machine-matchable category, e.g. `"tx"`, `"nack"`, `"expire"`.
    pub kind: &'static str,
    /// Free-form detail, e.g. the key and queue involved.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.kind, self.detail)
    }
}

/// A bounded ring buffer of trace records.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A disabled trace: records nothing, costs almost nothing.
    pub fn disabled() -> Self {
        Trace {
            records: VecDeque::new(),
            capacity: 0,
            dropped: 0,
        }
    }

    /// A trace retaining the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// True when this trace records events.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event if tracing is enabled. `detail` is only evaluated
    /// by the caller; prefer `trace.log(t, "tx", || format!(...))` via
    /// [`Trace::log_with`] when formatting is expensive.
    pub fn log(&mut self, at: SimTime, kind: &'static str, detail: String) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, kind, detail });
    }

    /// Records an event, building the detail lazily.
    pub fn log_with<F: FnOnce() -> String>(&mut self, at: SimTime, kind: &'static str, f: F) {
        if self.capacity == 0 {
            return;
        }
        self.log(at, kind, f());
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Records of one kind, oldest first.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.log(SimTime::ZERO, "tx", "k1".into());
        assert!(!t.is_enabled());
        assert!(t.is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5 {
            t.log(SimTime::from_secs(i), "tx", format!("k{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let kinds: Vec<&str> = t.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(kinds, vec!["k2", "k3", "k4"]);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Trace::with_capacity(10);
        t.log(SimTime::ZERO, "tx", "a".into());
        t.log(SimTime::ZERO, "nack", "b".into());
        t.log_with(SimTime::ZERO, "tx", || "c".into());
        assert_eq!(t.of_kind("tx").count(), 2);
        assert_eq!(t.of_kind("nack").count(), 1);
        assert_eq!(t.of_kind("expire").count(), 0);
    }

    #[test]
    fn display_format() {
        let r = TraceRecord {
            at: SimTime::from_millis(1500),
            kind: "tx",
            detail: "key=3".into(),
        };
        assert_eq!(r.to_string(), "[1.500000s] tx: key=3");
    }
}
