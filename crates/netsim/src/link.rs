//! Link/transmitter models: serialization delay, propagation delay, loss.
//!
//! The queueing model of §3 treats the announcement channel as a single
//! FIFO server of rate `μ_ch`. [`Transmitter`] is exactly that server: a
//! work-conserving FIFO pipe that serializes packets back to back.
//! [`Channel`] composes a transmitter with a propagation delay and a
//! [`LossModel`], producing per-packet delivery verdicts.

use crate::faults::FaultSchedule;
use crate::loss::LossModel;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;

/// A work-conserving FIFO transmitter of fixed rate.
///
/// Submitting a packet reserves the next free slice of link time; the
/// returned instant is when the *last bit* leaves the sender.
#[derive(Clone, Debug)]
pub struct Transmitter {
    rate: Bandwidth,
    busy_until: SimTime,
    bytes_sent: u64,
    packets_sent: u64,
}

impl Transmitter {
    /// A transmitter of the given rate, idle at time zero.
    pub fn new(rate: Bandwidth) -> Self {
        assert!(!rate.is_zero(), "transmitter needs nonzero bandwidth");
        Transmitter {
            rate,
            busy_until: SimTime::ZERO,
            bytes_sent: 0,
            packets_sent: 0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Changes the rate for subsequent submissions (bandwidth reallocation).
    /// Packets already accepted keep their departure times.
    pub fn set_rate(&mut self, rate: Bandwidth) {
        assert!(!rate.is_zero(), "transmitter needs nonzero bandwidth");
        self.rate = rate;
    }

    /// True when the link would accept a packet at `now` without queueing.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// The instant the transmitter becomes free.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Accepts a packet at `now`; returns the departure instant (end of
    /// serialization). The packet waits behind earlier submissions.
    pub fn submit(&mut self, now: SimTime, bytes: usize) -> SimTime {
        self.submit_degraded(now, bytes, 1.0)
    }

    /// [`Transmitter::submit`] under bandwidth degradation: the
    /// serialization time divides by `factor` in `(0, 1]` (an `ss-chaos`
    /// [`crate::faults::FaultKind::Bandwidth`] episode). `factor == 1.0`
    /// is the exact fault-free path.
    pub fn submit_degraded(&mut self, now: SimTime, bytes: usize, factor: f64) -> SimTime {
        assert!(factor > 0.0 && factor <= 1.0, "degradation factor {factor}");
        let mut wire = self.rate.transmit_time(bytes);
        if factor < 1.0 {
            wire = SimDuration::from_micros((wire.as_micros() as f64 / factor).round() as u64);
        }
        let start = self.busy_until.max(now);
        let depart = start + wire;
        self.busy_until = depart;
        self.bytes_sent += bytes as u64;
        self.packets_sent += 1;
        depart
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total packets accepted so far.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }
}

/// The fate of one packet pushed through a [`Channel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the last bit leaves the sender.
    pub departs: SimTime,
    /// When the packet reaches the receiver — `None` if the channel lost it.
    pub arrives: Option<SimTime>,
}

/// A lossy, delayed, rate-limited unidirectional channel.
pub struct Channel {
    tx: Transmitter,
    prop_delay: SimDuration,
    loss: Box<dyn LossModel>,
    rng: SimRng,
    lost: u64,
    faults: Option<FaultSchedule>,
    fault_lost: u64,
}

impl Channel {
    /// Builds a channel from a rate, a propagation delay, a loss process,
    /// and a dedicated random stream for loss draws.
    pub fn new(
        rate: Bandwidth,
        prop_delay: SimDuration,
        loss: Box<dyn LossModel>,
        rng: SimRng,
    ) -> Self {
        Channel {
            tx: Transmitter::new(rate),
            prop_delay,
            loss,
            rng,
            lost: 0,
            faults: None,
            fault_lost: 0,
        }
    }

    /// Attaches an `ss-chaos` fault schedule: partitions drop packets,
    /// loss-override episodes layer extra loss, and bandwidth episodes
    /// slow serialization. An empty schedule changes nothing.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Pushes one packet of `bytes` through the channel at `now`.
    ///
    /// The baseline loss model draws on every send, fault schedule or
    /// not, so attaching an empty schedule keeps the draw sequence — and
    /// therefore the run — byte-identical.
    pub fn send(&mut self, now: SimTime, bytes: usize) -> Delivery {
        let factor = self
            .faults
            .as_ref()
            .map_or(1.0, |f| f.bandwidth_factor(now));
        let departs = self.tx.submit_degraded(now, bytes, factor);
        let base_lost = self.loss.is_lost(&mut self.rng);
        let fault_lost = match self.faults.as_mut() {
            Some(f) => f.data_blocked(now) | f.extra_loss(now),
            None => false,
        };
        if base_lost || fault_lost {
            self.lost += 1;
            if fault_lost && !base_lost {
                self.fault_lost += 1;
            }
            Delivery {
                departs,
                arrives: None,
            }
        } else {
            Delivery {
                departs,
                arrives: Some(departs + self.prop_delay),
            }
        }
    }

    /// The underlying transmitter (for idle checks and rate changes).
    pub fn transmitter(&self) -> &Transmitter {
        &self.tx
    }

    /// Mutable access to the transmitter.
    pub fn transmitter_mut(&mut self) -> &mut Transmitter {
        &mut self.tx
    }

    /// Packets lost so far.
    pub fn packets_lost(&self) -> u64 {
        self.lost
    }

    /// Packets lost *only* because of an active fault episode (partition
    /// or loss override) — a subset of [`Channel::packets_lost`].
    pub fn packets_fault_lost(&self) -> u64 {
        self.fault_lost
    }

    /// Empirical loss fraction so far (0 before any traffic).
    pub fn observed_loss_rate(&self) -> f64 {
        let sent = self.tx.packets_sent();
        if sent == 0 {
            0.0
        } else {
            self.lost as f64 / sent as f64
        }
    }
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("tx", &self.tx)
            .field("prop_delay", &self.prop_delay)
            .field("lost", &self.lost)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Bernoulli, Pattern};

    #[test]
    fn transmitter_serializes_back_to_back() {
        // 8 kbps, 1000-byte packets => 1 s each.
        let mut tx = Transmitter::new(Bandwidth::from_kbps(8));
        let d1 = tx.submit(SimTime::ZERO, 1000);
        let d2 = tx.submit(SimTime::ZERO, 1000);
        assert_eq!(d1, SimTime::from_secs(1));
        assert_eq!(d2, SimTime::from_secs(2));
        assert_eq!(tx.packets_sent(), 2);
        assert_eq!(tx.bytes_sent(), 2000);
    }

    #[test]
    fn transmitter_idles_between_packets() {
        let mut tx = Transmitter::new(Bandwidth::from_kbps(8));
        tx.submit(SimTime::ZERO, 1000); // busy until 1s
        assert!(!tx.is_idle_at(SimTime::from_millis(500)));
        assert!(tx.is_idle_at(SimTime::from_secs(1)));
        // Submitting at 5s starts fresh (work conserving, no credit).
        let d = tx.submit(SimTime::from_secs(5), 1000);
        assert_eq!(d, SimTime::from_secs(6));
    }

    #[test]
    fn transmitter_rate_change_applies_forward() {
        let mut tx = Transmitter::new(Bandwidth::from_kbps(8));
        tx.submit(SimTime::ZERO, 1000);
        tx.set_rate(Bandwidth::from_kbps(16));
        let d = tx.submit(SimTime::ZERO, 1000);
        assert_eq!(d, SimTime::from_millis(1500));
        assert_eq!(tx.rate(), Bandwidth::from_kbps(16));
    }

    #[test]
    fn channel_applies_delay_and_loss() {
        let loss = Pattern::new(vec![false, true]);
        let mut ch = Channel::new(
            Bandwidth::from_kbps(8),
            SimDuration::from_millis(50),
            Box::new(loss),
            SimRng::new(0),
        );
        let a = ch.send(SimTime::ZERO, 1000);
        let b = ch.send(SimTime::ZERO, 1000);
        assert_eq!(a.arrives, Some(SimTime::from_millis(1050)));
        assert_eq!(b.departs, SimTime::from_secs(2));
        assert_eq!(b.arrives, None);
        assert_eq!(ch.packets_lost(), 1);
        assert!((ch.observed_loss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_faults_partition_and_degrade() {
        use crate::faults::{FaultKind, FaultSpec};
        let spec = FaultSpec::none()
            .partition(SimTime::from_secs(10), SimTime::from_secs(20))
            .with(
                SimTime::from_secs(30),
                SimTime::from_secs(40),
                FaultKind::Bandwidth(0.5),
            );
        let mut ch = Channel::new(
            Bandwidth::from_kbps(8),
            SimDuration::ZERO,
            Box::new(Pattern::lossless()),
            SimRng::new(0),
        )
        .with_faults(spec.build(SimRng::new(1)));
        assert!(ch.send(SimTime::ZERO, 1000).arrives.is_some());
        let d = ch.send(SimTime::from_secs(10), 1000);
        assert!(d.arrives.is_none(), "partitioned");
        assert_eq!(ch.packets_fault_lost(), 1);
        assert_eq!(ch.packets_lost(), 1);
        // 1000 B at 8 kbps is 1 s on the wire; at half rate it is 2 s.
        let d = ch.send(SimTime::from_secs(30), 1000);
        assert_eq!(d.departs, SimTime::from_secs(32));
        assert!(d.arrives.is_some());
    }

    #[test]
    fn channel_empirical_loss_tracks_model() {
        let mut ch = Channel::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            Box::new(Bernoulli::new(0.25)),
            SimRng::new(9),
        );
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            let d = ch.send(t, 100);
            t = d.departs;
        }
        let r = ch.observed_loss_rate();
        assert!((r - 0.25).abs() < 0.01, "loss {r}");
    }
}
