//! `ss-profile`: a deterministic hierarchical phase profiler.
//!
//! ROADMAP item 2 claims the post-timer-wheel bottleneck moved to
//! "digest trees and per-receiver probes" — but nothing in the repo
//! could attribute run time to subsystems, so the claim was anecdotal.
//! This module fixes that with scoped phase timers that satisfy the
//! workspace determinism contract:
//!
//! * **Exact event tallies are deterministic.** Every scope entry
//!   increments a per-phase counter; counters merge by addition across
//!   worker threads, and the report sorts phases by name, so the tally
//!   side of a [`ProfileReport`] is byte-identical across double runs
//!   and at any `par::sweep` worker count.
//! * **Wall time is measured but quarantined.** Each scope also records
//!   wall nanoseconds (the only wall-clock use in the sim crates, under
//!   an explicit D001 allowance). Wall fields appear **only** in
//!   [`ProfileReport::to_wall_jsonl`], which the harness writes to a
//!   gitignored `*.wall.jsonl` file; committed `*.profile.jsonl`
//!   artifacts carry counts alone. DESIGN.md §15 states the rule.
//! * **Observation never perturbs.** Scopes schedule no events and
//!   consume no randomness, so enabling profiling cannot change any
//!   simulation artifact — CI checks the enabled-vs-disabled byte
//!   identity of every CSV/metrics artifact.
//!
//! # Phase naming
//!
//! Phases form a tree. [`scope`] opens a named phase nested under
//! whatever phase is active on the current thread; paths join segments
//! with `/`. The engine's profiled run loop uses two reserved shapes:
//! [`WHEEL_PHASE`] for queue pops (wheel advance + cascade) and
//! `ev:<label>` roots for event dispatch — one per dispatched event, so
//! summing `ev:` roots reproduces the engine's dispatch counter exactly
//! (the ≥95 % attribution gate in ISSUE 9 falls out by construction).
//!
//! # Lifecycle
//!
//! Profiling is process-global and off by default. The harness enables
//! it ([`set_enabled`]), runs an experiment (each simulation run calls
//! [`flush`] on its worker thread when it finishes), then drains the
//! merged tree with [`take_report`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
// lint: allow(D001, the profiler is the sanctioned wall-clock reader; wall fields never reach committed artifacts)
use std::time::Instant;

/// Phase name the engine's profiled loop charges queue pops to: timer
/// wheel advance, cascade, and min-tracking.
pub const WHEEL_PHASE: &str = "wheel.advance";

/// Prefix marking a root phase as one engine event dispatch.
const DISPATCH_PREFIX: &str = "ev:";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The cross-thread accumulator worker threads flush into.
static GLOBAL: Mutex<BTreeMap<String, PhaseTotals>> = Mutex::new(BTreeMap::new());

#[derive(Clone, Copy, Debug, Default)]
struct PhaseTotals {
    count: u64,
    wall_ns: u64,
}

/// Per-thread profiler state: the open-scope path and local totals.
struct ThreadProfiler {
    /// Current phase path, segments joined by `/` (empty at top level).
    path: String,
    /// `path.len()` snapshots taken at each scope entry, for O(1) exit.
    opens: Vec<usize>,
    /// Phase path → totals accumulated on this thread since last flush.
    totals: BTreeMap<String, PhaseTotals>,
}

thread_local! {
    static TLS: RefCell<ThreadProfiler> = RefCell::new(ThreadProfiler {
        path: String::with_capacity(64),
        opens: Vec::with_capacity(8),
        totals: BTreeMap::new(),
    });
}

/// Turns profiling on or off for subsequent scopes (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled. Disabled scopes cost one
/// relaxed atomic load.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An open phase scope; closing (dropping) it charges the elapsed wall
/// time and one entry tally to the phase path that was active between
/// entry and exit.
#[must_use = "a phase scope measures until it is dropped"]
pub struct Scope {
    // lint: allow(D001, wall side of the profiler; quarantined to *.wall.jsonl)
    start: Option<Instant>,
}

fn enter(prefix: &str, name: &str) -> Scope {
    TLS.with(|p| {
        let mut p = p.borrow_mut();
        let p = &mut *p;
        p.opens.push(p.path.len());
        if !p.path.is_empty() {
            p.path.push('/');
        }
        p.path.push_str(prefix);
        p.path.push_str(name);
    });
    Scope {
        // lint: allow(D001, wall side of the profiler; quarantined to *.wall.jsonl)
        start: Some(Instant::now()),
    }
}

/// Opens a phase named `name` nested under the current phase (or as a
/// root). Inert and free of TLS traffic when profiling is disabled.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !is_enabled() {
        return Scope { start: None };
    }
    enter("", name)
}

/// Opens the dispatch scope for one engine event: a root (or nested)
/// phase named `ev:<label>`. Used by
/// [`run_until_profiled`](crate::engine::run_until_profiled); the `ev:`
/// marker is what lets [`ProfileReport::attributed_events`] count
/// exactly the dispatched events.
#[inline]
pub fn dispatch_scope(label: &'static str) -> Scope {
    if !is_enabled() {
        return Scope { start: None };
    }
    enter(DISPATCH_PREFIX, label)
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        TLS.with(|p| {
            let mut p = p.borrow_mut();
            let p = &mut *p;
            match p.totals.get_mut(p.path.as_str()) {
                Some(t) => {
                    t.count += 1;
                    t.wall_ns += wall_ns;
                }
                None => {
                    p.totals
                        .insert(p.path.clone(), PhaseTotals { count: 1, wall_ns });
                }
            }
            let open = p.opens.pop().unwrap_or(0);
            p.path.truncate(open);
        });
    }
}

/// Merges this thread's accumulated totals into the global tree and
/// clears them. Simulation runners call this when a run finishes, so a
/// `par::sweep` worker's tallies are visible once the sweep joins.
/// Counts merge by addition — flush order across threads cannot change
/// the report.
pub fn flush() {
    TLS.with(|p| {
        let mut p = p.borrow_mut();
        if p.totals.is_empty() {
            return;
        }
        let drained = std::mem::take(&mut p.totals);
        let mut g = GLOBAL.lock().expect("profile accumulator poisoned");
        for (path, t) in drained {
            let e = g.entry(path).or_default();
            e.count += t.count;
            e.wall_ns += t.wall_ns;
        }
    });
}

/// Flushes the calling thread and drains the global tree into a report
/// (phases sorted by path). The accumulator is left empty, so
/// back-to-back experiments get disjoint reports.
pub fn take_report() -> ProfileReport {
    flush();
    let mut g = GLOBAL.lock().expect("profile accumulator poisoned");
    let phases = std::mem::take(&mut *g)
        .into_iter()
        .map(|(path, t)| PhaseEntry {
            path,
            count: t.count,
            wall_ns: t.wall_ns,
        })
        .collect();
    ProfileReport { phases }
}

/// One phase of a [`ProfileReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Full phase path, segments joined by `/` (e.g. `ev:measure-tick/probe`).
    pub path: String,
    /// Exact number of scope entries — deterministic.
    pub count: u64,
    /// Accumulated wall nanoseconds — **not** deterministic; excluded
    /// from committed artifacts.
    pub wall_ns: u64,
}

impl PhaseEntry {
    /// Nesting depth (0 for roots).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Whether this phase is one engine event-dispatch root.
    pub fn is_dispatch_root(&self) -> bool {
        self.path.starts_with(DISPATCH_PREFIX) && !self.path.contains('/')
    }
}

/// A drained profile tree: every phase path with its exact entry count
/// and (quarantined) wall time, sorted by path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Phases in ascending path order.
    pub phases: Vec<PhaseEntry>,
}

impl ProfileReport {
    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Exact entry count of the phase at `path` (0 if absent).
    pub fn count(&self, path: &str) -> u64 {
        self.phases
            .iter()
            .find(|p| p.path == path)
            .map_or(0, |p| p.count)
    }

    /// Sum of the entry counts of all `ev:` dispatch roots — the number
    /// of engine events the profiler attributed to a named phase.
    pub fn attributed_events(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.is_dispatch_root())
            .map(|p| p.count)
            .sum()
    }

    /// Total wall nanoseconds across root phases (the run's profiled
    /// wall time; nondeterministic, for the wall artifact only).
    pub fn root_wall_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| !p.path.contains('/'))
            .map(|p| p.wall_ns)
            .sum()
    }

    /// The **deterministic** JSONL artifact: a schema header line
    /// carrying the run label and event totals, then one line per phase
    /// with its exact entry count. No wall-time field appears, so the
    /// bytes are identical across double runs and thread counts.
    pub fn to_jsonl(&self, run: &str, events_total: u64) -> String {
        let mut out = String::with_capacity(64 + 48 * self.phases.len());
        let _ = writeln!(
            out,
            "{{\"schema_version\":{},\"artifact\":\"profile\",\"run\":\"{run}\",\
             \"events_total\":{events_total},\"events_attributed\":{}}}",
            crate::metrics::ARTIFACT_SCHEMA_VERSION,
            self.attributed_events()
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{{\"phase\":\"{}\",\"depth\":{},\"count\":{}}}",
                p.path,
                p.depth(),
                p.count
            );
        }
        out
    }

    /// The wall-time JSONL export: same shape plus `wall_ns` and the
    /// share of profiled root wall time. Nondeterministic by nature —
    /// the harness writes it to a gitignored `*.wall.jsonl` file.
    pub fn to_wall_jsonl(&self, run: &str, events_total: u64) -> String {
        let total = self.root_wall_ns().max(1);
        let mut out = String::with_capacity(64 + 72 * self.phases.len());
        let _ = writeln!(
            out,
            "{{\"schema_version\":{},\"artifact\":\"profile_wall\",\"run\":\"{run}\",\
             \"events_total\":{events_total},\"events_attributed\":{},\"root_wall_ns\":{}}}",
            crate::metrics::ARTIFACT_SCHEMA_VERSION,
            self.attributed_events(),
            self.root_wall_ns()
        );
        for p in &self.phases {
            let mut line = format!(
                "{{\"phase\":\"{}\",\"depth\":{},\"count\":{},\"wall_ns\":{},\"root_share\":",
                p.path,
                p.depth(),
                p.count,
                p.wall_ns
            );
            let share = if p.path.contains('/') {
                // Shares are reported for roots only; children carry null.
                None
            } else {
                Some(p.wall_ns as f64 / total as f64)
            };
            match share {
                Some(s) => {
                    let _ = write!(line, "{s:.4}");
                }
                None => line.push_str("null"),
            }
            line.push('}');
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Chrome trace-event JSON objects (comma-joined, no surrounding
    /// brackets) rendering each phase's exact count as a Perfetto
    /// counter track, for merging into the ss-trace export. Counts
    /// only — deterministic like the rest of the trace.
    pub fn chrome_counter_events(&self) -> String {
        let mut out = String::with_capacity(96 * self.phases.len());
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"profile/{}\",\
                 \"args\":{{\"count\":{}}}}}",
                p.path, p.count
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiling state is process-global; tests serialize on this lock
    /// and drain the accumulator at entry so they cannot see each
    /// other's phases.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let _ = take_report();
        guard
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = isolated();
        {
            let _a = scope("a");
            let _b = scope("b");
        }
        assert!(take_report().is_empty());
    }

    #[test]
    fn nesting_builds_paths_and_counts() {
        let _g = isolated();
        set_enabled(true);
        for _ in 0..3 {
            let _d = dispatch_scope("arrival");
            for _ in 0..2 {
                let _inner = scope("digest");
            }
        }
        {
            let _r = scope("metrics.export");
        }
        set_enabled(false);
        let r = take_report();
        assert_eq!(r.count("ev:arrival"), 3);
        assert_eq!(r.count("ev:arrival/digest"), 6);
        assert_eq!(r.count("metrics.export"), 1);
        assert_eq!(r.attributed_events(), 3);
        let paths: Vec<&str> = r.phases.iter().map(|p| p.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        assert_eq!(paths, sorted, "report is path-sorted");
        // The deterministic artifact never mentions wall time.
        let jsonl = r.to_jsonl("test", 3);
        assert!(!jsonl.contains("wall"), "{jsonl}");
        assert!(jsonl.starts_with("{\"schema_version\":1,\"artifact\":\"profile\""));
        assert!(jsonl.contains("\"events_total\":3,\"events_attributed\":3"));
        // The wall export does, with a root share.
        let wall = r.to_wall_jsonl("test", 3);
        assert!(wall.contains("\"wall_ns\":"));
        assert!(wall.contains("\"root_share\":null"), "children carry null");
    }

    #[test]
    fn counts_merge_identically_across_threads() {
        let _g = isolated();
        set_enabled(true);
        let run = |reps: u64| {
            for _ in 0..reps {
                let _d = dispatch_scope("work");
                let _i = scope("inner");
            }
            flush();
        };
        std::thread::scope(|s| {
            s.spawn(|| run(10));
            s.spawn(|| run(20));
            s.spawn(|| run(30));
        });
        set_enabled(false);
        let r = take_report();
        assert_eq!(r.count("ev:work"), 60);
        assert_eq!(r.count("ev:work/inner"), 60);
        // Deterministic side is identical however the threads raced.
        assert_eq!(
            r.to_jsonl("t", 60),
            "{\"schema_version\":1,\"artifact\":\"profile\",\"run\":\"t\",\
             \"events_total\":60,\"events_attributed\":60}\n\
             {\"phase\":\"ev:work\",\"depth\":0,\"count\":60}\n\
             {\"phase\":\"ev:work/inner\",\"depth\":1,\"count\":60}\n"
        );
    }

    #[test]
    fn counter_track_export_is_count_only() {
        let _g = isolated();
        set_enabled(true);
        {
            let _d = dispatch_scope("tick");
        }
        set_enabled(false);
        let r = take_report();
        let c = r.chrome_counter_events();
        assert!(c.contains("\"ph\":\"C\""));
        assert!(c.contains("\"name\":\"profile/ev:tick\""));
        assert!(c.contains("\"count\":1"));
        assert!(!c.contains("wall"));
    }
}
