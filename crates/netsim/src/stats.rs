//! Online statistics used by every experiment.
//!
//! The paper's metrics are time averages (average system consistency is
//! "the time average of the instantaneous system consistency over the
//! entire lifetime of a system", §2.1) and per-event averages (receive
//! latency `T_rec`). [`TimeWeightedMean`] integrates a piecewise-constant
//! signal exactly; [`Welford`] accumulates event samples numerically
//! stably; [`DurationHistogram`] gives latency quantiles without storing
//! every sample; [`TimeSeries`] records `c(t)` curves for the Figure 8
//! style plots.

use crate::time::{SimDuration, SimTime};

/// Exact time average of a piecewise-constant signal.
///
/// Call [`TimeWeightedMean::update`] whenever the signal changes value; the
/// previous value is integrated over the elapsed span. Query with
/// [`TimeWeightedMean::mean_until`].
#[derive(Clone, Debug)]
pub struct TimeWeightedMean {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    integral: f64,
}

impl TimeWeightedMean {
    /// Starts integrating at `start` with initial signal value `v0`.
    pub fn new(start: SimTime, v0: f64) -> Self {
        TimeWeightedMean {
            start,
            last_t: start,
            last_v: v0,
            integral: 0.0,
        }
    }

    /// Records that the signal takes value `v` from time `t` onward.
    /// Panics if `t` precedes the previous update.
    pub fn update(&mut self, t: SimTime, v: f64) {
        let dt = t.since(self.last_t).as_secs_f64();
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
    }

    /// The current signal value.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// The time average over `[start, end]`. Returns `v0` for an empty span.
    /// Panics if `end` precedes the last update.
    pub fn mean_until(&self, end: SimTime) -> f64 {
        let tail = end.since(self.last_t).as_secs_f64();
        let total = end.since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_v;
        }
        (self.integral + self.last_v * tail) / total
    }
}

/// Welford's online mean/variance for event-driven samples.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A histogram of durations with geometric buckets, for latency quantiles.
///
/// Buckets grow by ~9% per step (80 buckets per decade of microseconds),
/// bounding quantile error to under 5% of the value — plenty for comparing
/// protocol variants.
#[derive(Clone, Debug)]
pub struct DurationHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

const BUCKETS_PER_DECADE: f64 = 80.0;
const NUM_BUCKETS: usize = 1 + (20.0 * BUCKETS_PER_DECADE) as usize; // up to 1e20 us

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            return 0;
        }
        let b = ((us as f64).log10() * BUCKETS_PER_DECADE).floor() as usize + 1;
        b.min(NUM_BUCKETS - 1)
    }

    fn bucket_value(b: usize) -> u64 {
        if b == 0 {
            return 0;
        }
        // Geometric midpoint of the bucket.
        let lo = 10f64.powf((b as f64 - 1.0) / BUCKETS_PER_DECADE);
        let hi = 10f64.powf(b as f64 / BUCKETS_PER_DECADE);
        ((lo * hi).sqrt()).round() as u64
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.sum_us += u128::from(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of all samples (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((self.sum_us / u128::from(self.total)) as u64)
    }

    /// The smallest sample (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.min_us)
        }
    }

    /// The largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// The `q`-quantile (`q` in `[0,1]`), approximate to bucket resolution.
    /// Returns zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_micros(
                    Self::bucket_value(b).clamp(self.min_us, self.max_us),
                );
            }
        }
        self.max()
    }
}

/// A recorded `(time, value)` curve, optionally downsampled to a minimum
/// spacing so long runs stay small. Used for consistency-vs-time plots
/// (Figure 8).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    min_spacing: SimDuration,
}

impl TimeSeries {
    /// A series that keeps at most one point per `min_spacing`
    /// (zero spacing keeps every point).
    pub fn new(min_spacing: SimDuration) -> Self {
        TimeSeries {
            points: Vec::new(),
            min_spacing,
        }
    }

    /// Appends a point unless it is closer than `min_spacing` to the last.
    /// The very first point is always kept.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            if t.saturating_since(last) < self.min_spacing {
                return;
            }
        }
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_exact() {
        // Signal: 0 on [0,2), 1 on [2,3), 0.5 on [3,5].
        let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
        m.update(SimTime::from_secs(2), 1.0);
        m.update(SimTime::from_secs(3), 0.5);
        let avg = m.mean_until(SimTime::from_secs(5));
        // integral = 0*2 + 1*1 + 0.5*2 = 2 over 5 seconds.
        assert!((avg - 0.4).abs() < 1e-12, "{avg}");
        assert_eq!(m.current(), 0.5);
    }

    #[test]
    fn time_weighted_mean_empty_span() {
        let m = TimeWeightedMean::new(SimTime::from_secs(1), 0.7);
        assert_eq!(m.mean_until(SimTime::from_secs(1)), 0.7);
    }

    #[test]
    fn time_weighted_mean_constant_signal() {
        let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.25);
        m.update(SimTime::from_secs(4), 0.25);
        assert!((m.mean_until(SimTime::from_secs(10)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert_eq!(w.count(), 5);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_degenerate() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_mean_exact_and_quantiles_close() {
        let mut h = DurationHistogram::new();
        for ms in 1..=1000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        let mean = h.mean().as_secs_f64();
        assert!((mean - 0.5005).abs() < 1e-6, "mean {mean}");
        let p50 = h.quantile(0.5).as_secs_f64();
        assert!((p50 - 0.5).abs() < 0.05, "p50 {p50}");
        let p99 = h.quantile(0.99).as_secs_f64();
        assert!((p99 - 0.99).abs() < 0.06, "p99 {p99}");
        assert_eq!(h.min(), SimDuration::from_millis(1));
        assert_eq!(h.max(), SimDuration::from_millis(1000));
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = DurationHistogram::new();
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        h.record(SimDuration::ZERO);
        assert_eq!(h.quantile(1.0), SimDuration::ZERO);
    }

    #[test]
    fn timeseries_downsamples() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        for ms in (0..5000).step_by(100) {
            s.push(SimTime::from_millis(ms), ms as f64);
        }
        // Points at 0, 1000, 2000, 3000, 4000 ms survive.
        assert_eq!(s.len(), 5);
        assert_eq!(s.points()[1].0, SimTime::from_secs(1));
    }

    #[test]
    fn timeseries_keeps_all_with_zero_spacing() {
        let mut s = TimeSeries::new(SimDuration::ZERO);
        assert!(s.is_empty());
        for i in 0..10 {
            s.push(SimTime::from_micros(i), i as f64);
        }
        assert_eq!(s.len(), 10);
    }
}
