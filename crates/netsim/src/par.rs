//! `par` — a deterministic fan-out executor for independent sweep points.
//!
//! Every figure of the paper regenerates from a *sweep*: a grid of
//! simulation runs that differ only in their parameters, each owning its
//! own seed and its own [`crate::MetricsRegistry`]. The runs share no
//! state, so they can execute on any number of worker threads — what
//! must never change is the *output*: tables and JSONL artifacts are
//! assembled strictly in sweep-point index order, so the bytes written
//! with one worker are identical to the bytes written with sixteen
//! (DESIGN.md §10).
//!
//! The executor is dependency-free and contains no `unsafe`: a
//! [`std::thread::scope`] worker pool pulls indices from an atomic
//! counter and posts `(index, result)` pairs over an [`std::sync::mpsc`]
//! channel; the caller's thread reassembles the dense result vector by
//! index. RNG streams cannot interleave because each point derives all
//! of its randomness from its own seed — nothing ambient is drawn
//! (ss-lint rule D003).
//!
//! Worker count resolution, highest priority first:
//!
//! 1. an explicit [`set_threads`] call (the experiments CLI's
//!    `--threads N` flag),
//! 2. the `SS_EXPERIMENTS_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`sweep`]. `0` clears the
/// override, falling back to `SS_EXPERIMENTS_THREADS` and then the
/// machine's available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count [`sweep`] will use right now. Always at least 1.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("SS_EXPERIMENTS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over every sweep point on the configured worker pool (see
/// [`threads`]) and returns the results **in index order** — element `i`
/// of the returned vector is `f(i, &points[i])`, whatever thread computed
/// it. See [`sweep_with_threads`] for the contract.
pub fn sweep<P, T, F>(points: &[P], f: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    F: Fn(usize, &P) -> T + Sync,
{
    sweep_with_threads(threads(), points, f)
}

/// Runs `f(i, &points[i])` for every `i` across `threads` workers and
/// reassembles the results densely in index order.
///
/// Determinism contract: `f` must derive everything it computes from its
/// arguments alone (each sweep point owns its seed), which every
/// simulation in this workspace already guarantees under ss-lint rules
/// D001–D003. Under that contract the returned vector — and anything
/// serialized from it in order — is byte-identical for every worker
/// count, including 1.
///
/// A panic inside `f` propagates to the caller once the pool has joined
/// (the panicking run's output is lost; no partial vector is returned).
pub fn sweep_with_threads<P, T, F>(threads: usize, points: &[P], f: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    F: Fn(usize, &P) -> T + Sync,
{
    let n = points.len();
    if threads <= 1 || n <= 1 {
        // The sequential oracle: the parallel path must reproduce this
        // byte for byte.
        return points.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send only fails if the receiver is gone, which
                // cannot happen while the scope holds the caller.
                let _ = tx.send((i, f(i, &points[i])));
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        debug_assert!(slots[i].is_none(), "sweep point {i} computed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("sweep point {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn results_come_back_in_index_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = sweep_with_threads(8, &points, |i, &p| {
            assert_eq!(i as u64, p);
            p * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_oracle() {
        // Each point owns a seed; the draws must be identical however
        // many workers execute the sweep.
        let points: Vec<u64> = (0..40).collect();
        let job = |_: usize, &seed: &u64| {
            let mut rng = SimRng::new(seed);
            (0..100).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        };
        let seq = sweep_with_threads(1, &points, job);
        for threads in [2, 3, 8, 64] {
            assert_eq!(sweep_with_threads(threads, &points, job), seq);
        }
    }

    #[test]
    fn more_workers_than_points_is_fine() {
        let points = [1u32, 2];
        assert_eq!(sweep_with_threads(16, &points, |_, &p| p + 1), vec![2, 3]);
    }

    #[test]
    fn empty_sweep_returns_empty() {
        let points: [u8; 0] = [];
        let out: Vec<u8> = sweep_with_threads(4, &points, |_, &p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn override_wins_and_clears() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let points: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            sweep_with_threads(4, &points, |_, &p| {
                assert!(p != 5, "boom");
                p
            })
        });
        assert!(r.is_err(), "a panicking sweep point must not be swallowed");
    }
}
