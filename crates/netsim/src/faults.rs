//! `ss-chaos`: deterministic fault-injection schedules on the virtual
//! clock.
//!
//! The paper's robustness claim — after partitions, crashes, and sender
//! silence "the group state quickly converges to accurately track the
//! reformed session" — is only testable if failure is a first-class,
//! *deterministic* input to a run. This module provides that input: a
//! [`FaultSpec`] is a plain-data, ordered set of timed fault *episodes*
//! (the same config-vs-runtime split as [`LossSpec`]), and its built
//! [`FaultSchedule`] answers per-packet and per-endpoint queries on the
//! virtual clock:
//!
//! * **Link faults** — [`FaultKind::Partition`] (uni- or bidirectional
//!   outage), [`FaultKind::ExtraLoss`] (a loss-rate override episode
//!   composing with the channel's own [`LossModel`]),
//!   [`FaultKind::Bandwidth`] (serialization slow-down on a
//!   [`crate::Transmitter`]), and the packet perturbations
//!   [`FaultKind::Duplicate`] / [`FaultKind::Corrupt`] /
//!   [`FaultKind::Reorder`].
//! * **Endpoint faults** — [`FaultKind::ReceiverCrash`] (a receiver is
//!   down for the episode and restarts from a wiped replica at its end)
//!   and [`FaultKind::SenderSilence`] (the sender stops transmitting).
//!
//! # Determinism
//!
//! A schedule owns its *own* [`SimRng`] stream (derive it from the run's
//! root with a fixed label), and only queries against an *active*
//! episode consume draws. An empty schedule therefore consumes zero
//! randomness and perturbs nothing: every pre-existing run is
//! byte-identical with `FaultSpec::default()`. Scripted and seeded
//! ([`FaultSpec::generate`]) schedules replay bit-for-bit because both
//! the episode list and every draw derive from seeds alone (ss-lint
//! D001/D003 apply here as everywhere).
//!
//! # Observability
//!
//! [`FaultSchedule::record_spans`] emits one `ss-trace` span per episode
//! under [`Actor::FaultInjector`] with [`TraceKind::Fault`], so fault
//! windows are visible on the same timeline as the record lifecycles
//! they disturb.

use crate::loss::{LossModel, LossSpec};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Actor, TraceKind, Tracer};

/// Which direction(s) of the link a [`FaultKind::Partition`] severs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDir {
    /// Both directions: data (sender → receivers) and feedback.
    Both,
    /// Only the data direction.
    Data,
    /// Only the feedback direction (NACKs/queries/reports).
    Feedback,
}

impl FaultDir {
    /// True when the data (sender → receiver) direction is severed.
    pub fn blocks_data(self) -> bool {
        matches!(self, FaultDir::Both | FaultDir::Data)
    }

    /// True when the feedback (receiver → sender) direction is severed.
    pub fn blocks_feedback(self) -> bool {
        matches!(self, FaultDir::Both | FaultDir::Feedback)
    }
}

/// The cloneable, plain-data description of one fault (configs must be
/// plain data; runtime state is built per run).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Total link outage in the given direction(s).
    Partition(FaultDir),
    /// An additional loss process layered over the channel's own model
    /// while the episode is active (a loss-rate override).
    ExtraLoss(LossSpec),
    /// Bandwidth degradation: serialization times divide by this factor
    /// in `(0, 1]` (0.25 means the link runs at quarter rate).
    Bandwidth(f64),
    /// Each delivered packet is duplicated with this probability.
    Duplicate(f64),
    /// Each packet is corrupted (and dropped at the receiver's checksum)
    /// with this probability.
    Corrupt(f64),
    /// Packets are delayed by an extra uniform jitter in `[0, d]`,
    /// reordering them relative to in-order traffic.
    Reorder(SimDuration),
    /// Receiver `i` is down for the episode: packets addressed to it are
    /// lost, and it restarts from a wiped replica when the episode ends.
    ReceiverCrash(u32),
    /// The sender transmits nothing (data or summaries) for the episode.
    SenderSilence,
}

impl FaultKind {
    /// Stable lowercase label for trace spans and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Partition(_) => "partition",
            FaultKind::ExtraLoss(_) => "extra-loss",
            FaultKind::Bandwidth(_) => "bandwidth",
            FaultKind::Duplicate(_) => "duplicate",
            FaultKind::Corrupt(_) => "corrupt",
            FaultKind::Reorder(_) => "reorder",
            FaultKind::ReceiverCrash(_) => "receiver-crash",
            FaultKind::SenderSilence => "sender-silence",
        }
    }

    fn validate(&self) {
        match *self {
            FaultKind::Bandwidth(f) => {
                assert!(f > 0.0 && f <= 1.0, "bandwidth factor {f} outside (0, 1]");
            }
            FaultKind::Duplicate(p) | FaultKind::Corrupt(p) => {
                assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
            }
            FaultKind::Reorder(d) => {
                assert!(d > SimDuration::ZERO, "reorder jitter must be positive");
            }
            FaultKind::Partition(_)
            | FaultKind::ExtraLoss(_)
            | FaultKind::ReceiverCrash(_)
            | FaultKind::SenderSilence => {}
        }
    }
}

/// One timed fault episode: `fault` is active on `[at, until)`.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeSpec {
    /// When the fault begins.
    pub at: SimTime,
    /// When it heals (exclusive).
    pub until: SimTime,
    /// What breaks.
    pub fault: FaultKind,
}

/// A plain-data fault schedule: an ordered set of timed episodes.
///
/// The `Default` is the empty schedule — no episodes, no randomness
/// consumed, no behavioral change. Build the runtime engine with
/// [`FaultSpec::build`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// The episodes, kept sorted by `(at, until)`.
    pub episodes: Vec<EpisodeSpec>,
}

impl FaultSpec {
    /// The empty schedule (same as `Default`).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// True when no episodes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Adds an episode (builder style). Panics when `until <= at` or the
    /// fault's parameters are out of range; keeps the list sorted.
    pub fn with(mut self, at: SimTime, until: SimTime, fault: FaultKind) -> Self {
        assert!(
            until > at,
            "episode must end after it starts ({at:?} .. {until:?})"
        );
        fault.validate();
        self.episodes.push(EpisodeSpec { at, until, fault });
        self.episodes.sort_by_key(|a| (a.at, a.until));
        self
    }

    /// A bidirectional partition on `[at, until)`.
    pub fn partition(self, at: SimTime, until: SimTime) -> Self {
        self.with(at, until, FaultKind::Partition(FaultDir::Both))
    }

    /// A loss-rate override episode.
    pub fn extra_loss(self, at: SimTime, until: SimTime, spec: LossSpec) -> Self {
        self.with(at, until, FaultKind::ExtraLoss(spec))
    }

    /// Receiver `rx` crashes at `at` and restarts (wiped) at `until`.
    pub fn receiver_crash(self, at: SimTime, until: SimTime, rx: u32) -> Self {
        self.with(at, until, FaultKind::ReceiverCrash(rx))
    }

    /// The sender goes silent on `[at, until)`.
    pub fn sender_silence(self, at: SimTime, until: SimTime) -> Self {
        self.with(at, until, FaultKind::SenderSilence)
    }

    /// Generates a seeded random schedule of `episodes` episodes inside
    /// `[horizon/8, horizon)`, each lasting between 1 s and `horizon/4`.
    /// Receiver-crash episodes target one of `n_receivers` receivers.
    /// The result is plain data: print it, script it, replay it.
    pub fn generate(
        rng: &mut SimRng,
        n_receivers: u32,
        horizon: SimDuration,
        episodes: usize,
    ) -> Self {
        assert!(n_receivers > 0, "need at least one receiver");
        let h = horizon.as_micros();
        assert!(h >= 16_000_000, "horizon too short for fault episodes");
        let mut spec = FaultSpec::none();
        for _ in 0..episodes {
            let at = SimTime::from_micros(h / 8 + rng.below(h / 2));
            let len = SimDuration::from_micros(1_000_000 + rng.below(h / 4));
            let until = (at + len).min(SimTime::from_micros(h * 7 / 8));
            let until = until.max(at + SimDuration::from_secs(1));
            let fault = match rng.below(8) {
                0 => FaultKind::Partition(FaultDir::Both),
                1 => FaultKind::Partition(FaultDir::Data),
                2 => FaultKind::Partition(FaultDir::Feedback),
                3 => FaultKind::ExtraLoss(LossSpec::Bernoulli(rng.uniform(0.2, 0.8))),
                4 => FaultKind::Bandwidth(rng.uniform(0.25, 0.9)),
                5 => FaultKind::ReceiverCrash(rng.below(u64::from(n_receivers)) as u32),
                6 => FaultKind::SenderSilence,
                _ => FaultKind::Duplicate(rng.uniform(0.1, 0.5)),
            };
            spec = spec.with(at, until, fault);
        }
        spec
    }

    /// When the last episode heals ([`SimTime::ZERO`] when empty).
    pub fn healed_at(&self) -> SimTime {
        self.episodes
            .iter()
            .map(|e| e.until)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Every episode start and end, sorted and deduplicated — the
    /// instants at which endpoint faults need applying (crash wipes,
    /// restarts).
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut b: Vec<SimTime> = self.episodes.iter().flat_map(|e| [e.at, e.until]).collect();
        b.sort();
        b.dedup();
        b
    }

    /// Builds the runtime engine. `rng` should be a dedicated stream
    /// derived from the run's root (e.g. `root.derive("faults")`) so
    /// fault draws never perturb the run's other streams.
    pub fn build(&self, rng: SimRng) -> FaultSchedule {
        let episodes = self
            .episodes
            .iter()
            .map(|e| Episode {
                at: e.at,
                until: e.until,
                spec: e.fault.clone(),
                loss: match &e.fault {
                    FaultKind::ExtraLoss(spec) => Some(spec.build()),
                    _ => None,
                },
            })
            .collect();
        FaultSchedule { episodes, rng }
    }
}

/// Runtime state of one episode (the built loss model is stateful).
struct Episode {
    at: SimTime,
    until: SimTime,
    spec: FaultKind,
    loss: Option<Box<dyn LossModel>>,
}

impl Episode {
    fn active(&self, now: SimTime) -> bool {
        self.at <= now && now < self.until
    }
}

/// Random perturbations applied to one delivered packet
/// ([`FaultSchedule::perturb`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Perturbation {
    /// Deliver a second copy of the packet.
    pub duplicate: bool,
    /// The packet is corrupted; the receiver's checksum discards it.
    pub corrupt: bool,
    /// Extra delivery delay (reordering jitter).
    pub extra_delay: SimDuration,
}

/// The runtime fault engine: answers link/endpoint queries on the
/// virtual clock, drawing only from its own random stream and only while
/// an episode is active.
pub struct FaultSchedule {
    episodes: Vec<Episode>,
    rng: SimRng,
}

impl FaultSchedule {
    /// An engine with no episodes (for plumbing defaults).
    pub fn empty() -> Self {
        FaultSpec::none().build(SimRng::new(0))
    }

    /// True when no episodes exist at all.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// True when any episode is active at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.episodes.iter().any(|e| e.active(now))
    }

    /// True when a partition severs the data direction at `now`.
    pub fn data_blocked(&self, now: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.active(now) && matches!(e.spec, FaultKind::Partition(d) if d.blocks_data()))
    }

    /// True when a partition severs the feedback direction at `now`.
    pub fn feedback_blocked(&self, now: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            e.active(now) && matches!(e.spec, FaultKind::Partition(d) if d.blocks_feedback())
        })
    }

    /// Draws the active loss-override episodes for one transmission:
    /// `true` when any of them loses the packet. Every active override
    /// draws (no short-circuit), so the draw count — and therefore every
    /// later draw — depends only on the schedule and the call sequence.
    pub fn extra_loss(&mut self, now: SimTime) -> bool {
        let mut lost = false;
        for e in &mut self.episodes {
            if e.at <= now && now < e.until {
                if let Some(model) = e.loss.as_mut() {
                    lost |= model.is_lost(&mut self.rng);
                }
            }
        }
        lost
    }

    /// The product of active bandwidth-degradation factors (1.0 when
    /// none): serialization times divide by the returned factor.
    pub fn bandwidth_factor(&self, now: SimTime) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.active(now))
            .filter_map(|e| match e.spec {
                FaultKind::Bandwidth(f) => Some(f),
                _ => None,
            })
            .product()
    }

    /// Draws this packet's duplicate/corrupt/reorder perturbations from
    /// the active episodes (all-default when none are active; consumes
    /// no draws in that case).
    pub fn perturb(&mut self, now: SimTime) -> Perturbation {
        let mut p = Perturbation::default();
        for e in &self.episodes {
            if !e.active(now) {
                continue;
            }
            match e.spec {
                FaultKind::Duplicate(prob) => p.duplicate |= self.rng.chance(prob),
                FaultKind::Corrupt(prob) => p.corrupt |= self.rng.chance(prob),
                FaultKind::Reorder(d) => {
                    p.extra_delay += SimDuration::from_micros(self.rng.below(d.as_micros() + 1));
                }
                _ => {}
            }
        }
        p
    }

    /// True when receiver `rx` is crashed at `now`.
    pub fn receiver_down(&self, now: SimTime, rx: u32) -> bool {
        self.episodes
            .iter()
            .any(|e| e.active(now) && matches!(e.spec, FaultKind::ReceiverCrash(i) if i == rx))
    }

    /// True when any receiver is crashed at `now`.
    pub fn any_receiver_down(&self, now: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.active(now) && matches!(e.spec, FaultKind::ReceiverCrash(_)))
    }

    /// True when the sender is silenced at `now`.
    pub fn sender_silent(&self, now: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.active(now) && matches!(e.spec, FaultKind::SenderSilence))
    }

    /// Receivers whose crash episode *starts* exactly at `t` (wipe now).
    pub fn crashes_at(&self, t: SimTime) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .episodes
            .iter()
            .filter_map(|e| match e.spec {
                FaultKind::ReceiverCrash(i) if e.at == t => Some(i),
                _ => None,
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Receivers whose crash episode *ends* exactly at `t` (restart now,
    /// from a wiped replica).
    pub fn restarts_at(&self, t: SimTime) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .episodes
            .iter()
            .filter_map(|e| match e.spec {
                FaultKind::ReceiverCrash(i) if e.until == t => Some(i),
                _ => None,
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// When the last episode heals ([`SimTime::ZERO`] when empty).
    pub fn healed_at(&self) -> SimTime {
        self.episodes
            .iter()
            .map(|e| e.until)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Episode starts and ends, sorted and deduplicated.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut b: Vec<SimTime> = self.episodes.iter().flat_map(|e| [e.at, e.until]).collect();
        b.sort();
        b.dedup();
        b
    }

    /// The first boundary strictly after `now`, if any — where a paused
    /// sender should re-check its silence.
    pub fn next_boundary_after(&self, now: SimTime) -> Option<SimTime> {
        self.boundaries().into_iter().find(|&t| t > now)
    }

    /// Emits one trace span per episode (key = episode index) under
    /// [`Actor::FaultInjector`], labeled with the fault kind, so fault
    /// windows appear on the record-lifecycle timeline. Pure
    /// observation: consumes no randomness.
    pub fn record_spans(&self, tracer: &mut Tracer) {
        for (i, e) in self.episodes.iter().enumerate() {
            tracer.span_labeled(
                e.at,
                e.until,
                Actor::FaultInjector,
                TraceKind::Fault,
                i as u64,
                e.spec.label(),
            );
        }
    }
}

impl std::fmt::Debug for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut list = f.debug_list();
        for e in &self.episodes {
            list.entry(&(e.at, e.until, e.spec.label()));
        }
        list.finish()
    }
}

/// Replays a [`FaultSchedule`] as real socket-level drops.
///
/// The simulator applies a schedule *inside* the channel; a real UDP
/// path has no channel to hook, so the runtime applies the same schedule
/// at the socket **ingress**: each arriving datagram asks the adapter
/// whether the schedule would have lost it, and a `true` answer discards
/// the datagram before it reaches any state machine — a real loss as far
/// as the protocol is concerned. `now` is the caller's wall-clock time
/// mapped onto the schedule's [`SimTime`] axis (the runtime's epoch-based
/// clock does this), so an episode scripted for `t ∈ [2s, 5s)` drops real
/// datagrams during the corresponding wall-clock window.
///
/// Draw discipline: partition checks are pure; only the extra-loss
/// episodes draw, from the schedule's own **shared, unbatched** stream —
/// the same contract the simulator channels use (see [`FaultSchedule::extra_loss`]).
/// Because a real path's datagram count differs from the sim's packet
/// count, draw-for-draw identity holds per call sequence, not per run;
/// what is preserved is the audited loss process itself. Blocked
/// directions short-circuit *before* drawing, matching the sim channel's
/// discipline of not spending randomness on packets a partition already
/// discards.
///
/// Every discard is counted, never silent: [`RealPathFaults::data_drops`]
/// and [`RealPathFaults::feedback_drops`] feed the runtime's
/// `runtime.fault.drops` counter and the `ReconvergenceReport`.
#[derive(Debug)]
pub struct RealPathFaults {
    schedule: FaultSchedule,
    data_drops: u64,
    feedback_drops: u64,
}

impl RealPathFaults {
    /// Wraps a built schedule for socket-ingress replay.
    pub fn new(schedule: FaultSchedule) -> Self {
        RealPathFaults {
            schedule,
            data_drops: 0,
            feedback_drops: 0,
        }
    }

    /// Decides one arriving **data-direction** datagram (publisher →
    /// subscriber): `true` means the schedule drops it at `now`.
    pub fn drop_data(&mut self, now: SimTime) -> bool {
        let dropped = self.schedule.data_blocked(now)
            || self.schedule.sender_silent(now)
            || self.schedule.extra_loss(now);
        if dropped {
            self.data_drops += 1;
        }
        dropped
    }

    /// Decides one arriving **feedback-direction** datagram (subscriber →
    /// publisher): `true` means the schedule drops it at `now`.
    pub fn drop_feedback(&mut self, now: SimTime) -> bool {
        let dropped = self.schedule.feedback_blocked(now) || self.schedule.extra_loss(now);
        if dropped {
            self.feedback_drops += 1;
        }
        dropped
    }

    /// Data-direction datagrams discarded so far.
    pub fn data_drops(&self) -> u64 {
        self.data_drops
    }

    /// Feedback-direction datagrams discarded so far.
    pub fn feedback_drops(&self) -> u64 {
        self.feedback_drops
    }

    /// The wrapped schedule (pure queries: healed_at, boundaries, …).
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_is_inert_and_drawless() {
        let mut s = FaultSpec::none().build(SimRng::new(7));
        let now = secs(5);
        assert!(!s.is_active(now));
        assert!(!s.data_blocked(now));
        assert!(!s.feedback_blocked(now));
        assert!(!s.extra_loss(now));
        assert_eq!(s.bandwidth_factor(now), 1.0);
        assert_eq!(s.perturb(now), Perturbation::default());
        assert!(!s.receiver_down(now, 0));
        assert!(!s.sender_silent(now));
        assert_eq!(s.healed_at(), SimTime::ZERO);
        assert!(s.boundaries().is_empty());
        // No draws were consumed: the rng stream is untouched.
        let mut fresh = SimRng::new(7);
        assert_eq!(s.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn partition_windows_and_directions() {
        let s = FaultSpec::none()
            .with(secs(10), secs(20), FaultKind::Partition(FaultDir::Data))
            .with(secs(15), secs(25), FaultKind::Partition(FaultDir::Feedback))
            .build(SimRng::new(1));
        assert!(!s.data_blocked(secs(9)));
        assert!(s.data_blocked(secs(10)));
        assert!(!s.feedback_blocked(secs(12)));
        assert!(s.feedback_blocked(secs(15)));
        assert!(s.data_blocked(secs(19)) && s.feedback_blocked(secs(19)));
        assert!(!s.data_blocked(secs(20)), "end is exclusive");
        assert!(!s.feedback_blocked(secs(25)));
        assert_eq!(s.healed_at(), secs(25));
        assert_eq!(s.boundaries(), vec![secs(10), secs(15), secs(20), secs(25)]);
        assert_eq!(s.next_boundary_after(secs(10)), Some(secs(15)));
        assert_eq!(s.next_boundary_after(secs(25)), None);
    }

    #[test]
    fn extra_loss_draws_only_while_active() {
        let spec = FaultSpec::none().extra_loss(secs(10), secs(20), LossSpec::Bernoulli(1.0));
        let mut s = spec.build(SimRng::new(3));
        assert!(!s.extra_loss(secs(5)), "inactive: no loss");
        assert!(s.extra_loss(secs(10)));
        assert!(s.extra_loss(secs(19)));
        assert!(!s.extra_loss(secs(20)));
        // Outside the window no draws were consumed: two engines that
        // only query outside the window stay in lockstep.
        let mut a = spec.build(SimRng::new(9));
        let mut b = spec.build(SimRng::new(9));
        assert!(!a.extra_loss(secs(1)));
        for t in [12, 14, 16] {
            assert_eq!(a.extra_loss(secs(t)), b.extra_loss(secs(t)));
        }
    }

    #[test]
    fn bandwidth_factors_multiply() {
        let s = FaultSpec::none()
            .with(secs(0), secs(10), FaultKind::Bandwidth(0.5))
            .with(secs(5), secs(10), FaultKind::Bandwidth(0.5))
            .build(SimRng::new(0));
        assert_eq!(s.bandwidth_factor(secs(1)), 0.5);
        assert_eq!(s.bandwidth_factor(secs(6)), 0.25);
        assert_eq!(s.bandwidth_factor(secs(10)), 1.0);
    }

    #[test]
    fn endpoint_faults_and_edges() {
        let s = FaultSpec::none()
            .receiver_crash(secs(10), secs(20), 1)
            .sender_silence(secs(30), secs(40))
            .build(SimRng::new(0));
        assert!(!s.receiver_down(secs(9), 1));
        assert!(s.receiver_down(secs(10), 1));
        assert!(!s.receiver_down(secs(10), 0));
        assert!(s.any_receiver_down(secs(15)));
        assert!(!s.any_receiver_down(secs(25)));
        assert!(s.sender_silent(secs(30)));
        assert!(!s.sender_silent(secs(40)));
        assert_eq!(s.crashes_at(secs(10)), vec![1]);
        assert!(s.crashes_at(secs(20)).is_empty());
        assert_eq!(s.restarts_at(secs(20)), vec![1]);
    }

    #[test]
    fn perturbations_apply_per_packet() {
        let mut s = FaultSpec::none()
            .with(secs(0), secs(10), FaultKind::Duplicate(1.0))
            .with(secs(0), secs(10), FaultKind::Corrupt(1.0))
            .with(
                secs(0),
                secs(10),
                FaultKind::Reorder(SimDuration::from_millis(100)),
            )
            .build(SimRng::new(2));
        let p = s.perturb(secs(1));
        assert!(p.duplicate && p.corrupt);
        assert!(p.extra_delay <= SimDuration::from_millis(100));
        assert_eq!(s.perturb(secs(10)), Perturbation::default());
    }

    #[test]
    fn generated_schedules_replay_bit_for_bit() {
        let horizon = SimDuration::from_secs(300);
        let a = FaultSpec::generate(&mut SimRng::new(42), 3, horizon, 5);
        let b = FaultSpec::generate(&mut SimRng::new(42), 3, horizon, 5);
        assert_eq!(a, b);
        assert_eq!(a.episodes.len(), 5);
        for e in &a.episodes {
            assert!(e.at < e.until);
            assert!(e.until <= SimTime::from_micros(horizon.as_micros()));
        }
        // Different seeds give different schedules.
        let c = FaultSpec::generate(&mut SimRng::new(43), 3, horizon, 5);
        assert_ne!(a, c);
        // And the built engines replay identically too.
        let mut x = a.build(SimRng::new(5));
        let mut y = b.build(SimRng::new(5));
        let mut t = SimTime::ZERO;
        for _ in 0..2000 {
            t += SimDuration::from_millis(137);
            assert_eq!(x.extra_loss(t), y.extra_loss(t));
            assert_eq!(x.perturb(t), y.perturb(t));
            assert_eq!(x.data_blocked(t), y.data_blocked(t));
        }
    }

    #[test]
    fn spans_are_visible_to_trace() {
        let s = FaultSpec::none()
            .partition(secs(10), secs(20))
            .sender_silence(secs(30), secs(35))
            .build(SimRng::new(0));
        let mut tr = Tracer::with_capacity(16);
        s.record_spans(&mut tr);
        let spans: Vec<_> = tr.of_kind(TraceKind::Fault).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].at, secs(10));
        assert_eq!(spans[0].end, Some(secs(20)));
        assert_eq!(spans[0].label, "partition");
        assert_eq!(spans[1].label, "sender-silence");
        assert!(tr.to_causal_jsonl().contains("fault-injector"));
    }

    #[test]
    #[should_panic(expected = "end after it starts")]
    fn rejects_empty_episode() {
        let _ = FaultSpec::none().partition(secs(5), secs(5));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_zero_bandwidth_factor() {
        let _ = FaultSpec::none().with(secs(0), secs(1), FaultKind::Bandwidth(0.0));
    }
}
