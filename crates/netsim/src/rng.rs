//! Deterministic randomness for simulations.
//!
//! Every experiment run owns a single master seed. Components derive
//! independent child streams from that seed by name ([`SimRng::derive`]),
//! so adding a new consumer of randomness does not perturb the draws seen
//! by existing ones — a prerequisite for comparing protocol variants on
//! identical workloads ("common random numbers").

use crate::time::SimDuration;

/// The xoshiro256++ generator backing [`SimRng`] — the same algorithm
/// `rand`'s 64-bit `SmallRng` uses, implemented locally so the
/// simulation stack has **zero** external randomness dependencies and
/// every draw is a pure function of the seed. No constructor reads the
/// OS entropy pool or the clock; determinism rule D003 (`ss-lint`)
/// forbids any other randomness source in the workspace.
#[derive(Clone, Debug)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the 256-bit state via splitmix64, the
    /// initialization Vigna recommends (and `SmallRng::seed_from_u64`
    /// performs) so that similar seeds yield uncorrelated streams.
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)` from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded random stream with the distribution helpers the simulations
/// need (Bernoulli trials, exponential interarrivals, uniform picks).
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream keyed by `label`. The child is a
    /// pure function of `(parent seed material, label)`: deriving the same
    /// label twice from clones of the same parent yields identical streams.
    pub fn derive(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with fresh material from a clone of
        // the parent so different parents give different children.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut parent = self.inner.clone();
        let mix = parent.next_u64();
        SimRng::new(h ^ mix.rotate_left(17))
    }

    /// A Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.next_f64() < p
        }
    }

    /// A uniform draw in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        lo + self.inner.next_f64() * (hi - lo)
    }

    /// A uniform integer draw in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.next_u64() % n
    }

    /// An exponential variate with the given rate (events per second),
    /// via inverse-CDF. Panics unless `rate > 0`.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}");
        // 1 - U in (0, 1] avoids ln(0).
        let u: f64 = 1.0 - self.inner.next_f64();
        -u.ln() / rate
    }

    /// An exponential interarrival/service time with the given rate
    /// (events per second), as a simulated duration (>= 1 us so events
    /// always advance the clock).
    pub fn exp_duration(&mut self, rate: f64) -> SimDuration {
        let s = self.exp(rate);
        SimDuration::from_micros(((s * 1e6).round() as u64).max(1))
    }

    /// A geometric variate: number of failures before the first success of
    /// a `p`-coin, i.e. `P[X = k] = (1-p)^k p`. Panics unless `0 < p <= 1`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "invalid geometric p {p}");
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = 1.0 - self.inner.next_f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Picks a uniformly random element of `items`. Panics on empty input.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// A raw 64-bit draw, for callers building their own distributions.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// The exact integer threshold `t` such that
    /// `(next_u64() >> 11) < t` decides a Bernoulli(`p`) trial
    /// **bit-for-bit identically** to `next_f64() < p`, for `p` in
    /// `(0, 1)`.
    ///
    /// Why this is exact and not an approximation: `next_f64()` is
    /// `k * 2^-53` for an integer `k = next_u64() >> 11` in `[0, 2^53)`,
    /// and that product is computed exactly (scaling by a power of two
    /// never rounds). So `next_f64() < p  ⟺  k < p * 2^53` as real
    /// numbers — and `p * 2^53` is itself computed exactly in `f64` for
    /// the same reason. Taking `t = ceil(p * 2^53)` turns the open
    /// comparison against a possibly-fractional bound into an integer
    /// one: `k < p·2^53 ⟺ k < t` whether or not the bound is an
    /// integer. This is what lets [`SimRng::bernoulli_block`] batch loss
    /// draws without perturbing a single outcome.
    pub fn bernoulli_threshold(p: f64) -> u64 {
        debug_assert!(p > 0.0 && p < 1.0, "threshold wants open (0,1), got {p}");
        (p * (1u64 << 53) as f64).ceil() as u64
    }

    /// Draws 64 consecutive Bernoulli outcomes against an integer
    /// `threshold` from [`SimRng::bernoulli_threshold`], packed into a
    /// bitmask (bit `i` = outcome of draw `i`).
    ///
    /// Each outcome consumes **exactly one** `next_u64`, in stream
    /// order, so a consumer popping bits `0, 1, 2, …` sees the same
    /// outcome sequence as one calling [`SimRng::chance`] per trial —
    /// the contract that keeps batched loss models byte-identical
    /// (DESIGN.md §14). Only safe on streams dedicated to these draws:
    /// interleaving other draws from the same stream between bits would
    /// read positions the batch already consumed.
    pub fn bernoulli_block(&mut self, threshold: u64) -> u64 {
        let mut bits = 0u64;
        for i in 0..64 {
            bits |= u64::from((self.inner.next_u64() >> 11) < threshold) << i;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_stable_and_distinct() {
        let root = SimRng::new(7);
        let mut c1 = root.derive("loss");
        let mut c2 = root.derive("loss");
        let mut c3 = root.derive("workload");
        let x1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let x2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        let x3: Vec<u64> = (0..8).map(|_| c3.next_u64()).collect();
        assert_eq!(x1, x2, "same label must give the same stream");
        assert_ne!(x1, x3, "different labels must give different streams");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency() {
        let mut r = SimRng::new(99);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn exp_mean() {
        let mut r = SimRng::new(5);
        let rate = 4.0;
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.exp(rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp_duration_positive() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            assert!(!r.exp_duration(1e9).is_zero());
        }
    }

    #[test]
    fn geometric_mean() {
        let mut r = SimRng::new(11);
        let p = 0.25;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        // E[X] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn pick_and_below_cover_range() {
        let mut r = SimRng::new(17);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(*r.pick(&items) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
        }
    }
}
