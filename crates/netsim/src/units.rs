//! Bandwidth and data-size units.
//!
//! The paper expresses workloads and channel capacities in kilobits per
//! second (e.g. "λ = 15 kbps, μ_data = 45 kbps"). [`Bandwidth`] keeps
//! bits-per-second as an integer and converts between byte counts and
//! serialization delays exactly (rounding up to whole microseconds so a
//! transmitter can never finish "early").

use crate::time::SimDuration;
use core::fmt;
use core::ops::{Add, Sub};

/// A link or sub-queue capacity in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero capacity. Transmissions on a zero-capacity queue never complete;
    /// callers treat this as "queue disabled".
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Builds a bandwidth from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Builds a bandwidth from kilobits per second (10^3 bits, as in the
    /// paper's figures).
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Builds a bandwidth from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Kilobits per second, as a float.
    pub fn as_kbps_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this bandwidth is zero (a disabled queue).
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time to serialize `bytes` onto a link of this capacity, rounded **up**
    /// to a whole microsecond. Panics if the bandwidth is zero.
    pub fn transmit_time(self, bytes: usize) -> SimDuration {
        assert!(self.0 > 0, "cannot transmit on zero bandwidth");
        let bits = bytes as u128 * 8;
        let us = (bits * 1_000_000).div_ceil(self.0 as u128);
        SimDuration::from_micros(u64::try_from(us).expect("transmit time overflow"))
    }

    /// Packets per second achievable for a fixed packet size, as a float.
    pub fn packets_per_sec(self, packet_bytes: usize) -> f64 {
        self.0 as f64 / (packet_bytes as f64 * 8.0)
    }

    /// Scales the bandwidth by `k ∈ [0, ∞)`, rounding to the nearest bit/s.
    /// Used to split a session budget into sub-queue shares.
    pub fn mul_f64(self, k: f64) -> Bandwidth {
        assert!(k.is_finite() && k >= 0.0, "invalid bandwidth scale {k}");
        Bandwidth((self.0 as f64 * k).round() as u64)
    }

    /// The fraction `self / total`, or 0 when `total` is zero.
    pub fn fraction_of(self, total: Bandwidth) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// Subtracts, saturating at zero.
    pub fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.checked_add(rhs.0).expect("Bandwidth overflow"))
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.checked_sub(rhs.0).expect("Bandwidth underflow"))
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}kbps", self.as_kbps_f64())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kbps", self.as_kbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Bandwidth::from_kbps(45).as_bps(), 45_000);
        assert_eq!(Bandwidth::from_mbps(1).as_bps(), 1_000_000);
        assert_eq!(Bandwidth::from_kbps(128).as_kbps_f64(), 128.0);
    }

    #[test]
    fn transmit_time_exact() {
        // 1000 bytes at 8 kbps = 8000 bits / 8000 bps = 1 s exactly.
        let bw = Bandwidth::from_kbps(8);
        assert_eq!(bw.transmit_time(1000), SimDuration::from_secs(1));
    }

    #[test]
    fn transmit_time_rounds_up() {
        // 1 byte at 1 Mbps = 8 us exactly; 1 byte at 3 Mbps = 2.67us -> 3us.
        assert_eq!(
            Bandwidth::from_mbps(1).transmit_time(1),
            SimDuration::from_micros(8)
        );
        assert_eq!(
            Bandwidth::from_mbps(3).transmit_time(1),
            SimDuration::from_micros(3)
        );
    }

    #[test]
    fn packets_per_sec_matches_paper_units() {
        // The paper's mu_data = 45 kbps with 1000-byte ADUs is 5.625 pkt/s.
        let r = Bandwidth::from_kbps(45).packets_per_sec(1000);
        assert!((r - 5.625).abs() < 1e-12);
    }

    #[test]
    fn split_and_fraction() {
        let total = Bandwidth::from_kbps(45);
        let hot = total.mul_f64(0.4);
        assert_eq!(hot.as_bps(), 18_000);
        assert!((hot.fraction_of(total) - 0.4).abs() < 1e-12);
        assert_eq!(total - hot, Bandwidth::from_kbps(27));
        assert_eq!(Bandwidth::ZERO.fraction_of(Bandwidth::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::ZERO.transmit_time(10);
    }
}
