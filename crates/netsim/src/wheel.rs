//! A hierarchical timing wheel — the priority queue behind
//! [`EventQueue`](crate::engine::EventQueue).
//!
//! The soft-state workload is dominated by timers at fixed offsets: TTL
//! expirations, refresh announcements, retry backoffs. A comparison heap
//! pays `O(log n)` pointer-chasing swaps per operation for a workload
//! where almost every deadline lands a known distance in the future. The
//! classic answer (Varghese & Lauck's hashed/hierarchical timing wheels)
//! is to bucket deadlines by their distance from the current time:
//! near-future timers land in fine-grained slots that insert and expire
//! in `O(1)`, and far-future timers land in coarser slots that are split
//! ("cascaded") into finer ones only as the clock approaches them.
//!
//! ## Geometry
//!
//! The wheel has [`LEVELS`] = 4 levels of [`SLOTS`] = 1024 slots each.
//! One tick is one microsecond (the engine's clock resolution). A slot
//! at level `l` spans `1024^l` ticks, so the levels cover:
//!
//! ```text
//! level 0:  1024 slots x 1 us      =   1024 us  (~1 ms; one slot = one tick)
//! level 1:  1024 slots x ~1 ms     =   ~1.05 s
//! level 2:  1024 slots x ~1.05 s   =  ~17.9 min
//! level 3:  1024 slots x ~17.9 min =  ~12.7 days   (the wheel horizon)
//! spill  :  everything beyond the horizon, kept sorted
//! ```
//!
//! An event `delta = deadline - cursor` ticks away lands at the level
//! whose slot width matches the magnitude of `delta` — concretely, the
//! level containing the highest bit in which `deadline` and the cursor
//! differ. Each level keeps a two-tier occupancy bitmap (sixteen 64-bit
//! words plus one summary word with a bit per non-empty word), so "find
//! the next non-empty slot" is two `trailing_zeros` instead of a scan
//! across empty slots — essential at microsecond resolution where
//! consecutive events are usually thousands of ticks apart.
//!
//! The wide levels are the point: the protocols' characteristic timers
//! (refresh announcements, service completions, TTLs at tens of
//! milliseconds to minutes of simulated time) land one or at most two
//! levels up, so an entry is touched at most three times in its life —
//! insert, one cascade, emit. The classic 64-slot geometry files the
//! same timers three levels up and re-touches every entry once per
//! level, which roughly doubled the queue cost per event on the
//! `fig3`-style experiments.
//!
//! Events more than `1024^4` ticks (~12.7 simulated days) ahead of the
//! cursor overflow to a small **spill** vector kept sorted by
//! `(deadline, seq)`; sweeps only put end-of-run sentinels and very long
//! TTLs there, so it stays tiny. When the wheel drains, the earliest
//! spill entries are folded back in and the cursor jumps forward.
//!
//! ## Determinism contract
//!
//! [`TimerWheel::pop`] yields entries in exactly ascending
//! `(deadline, seq)` order — bit-for-bit the order a binary heap with a
//! FIFO tie-break would produce (property-tested against that reference
//! model in `tests/properties.rs`). Two details make this exact:
//!
//! * level-0 slots are one tick wide, so every entry in a level-0 slot
//!   shares one deadline — a slot *is* a same-timestamp bucket;
//! * a bucket can receive entries out of insertion order (an entry
//!   cascading down from level 3 may have a *smaller* `seq` than one
//!   scheduled directly into the bucket later), so the bucket is sorted
//!   by `seq` once, when it is drained.
//!
//! See `DESIGN.md` §14 for the full walkthrough, including a worked TTL
//! cycle through the levels.

use crate::time::SimTime;
use std::cmp::Reverse;

/// Number of hierarchical levels in the wheel.
pub const LEVELS: usize = 4;
/// Slots per level. Must be a power of two and a multiple of 64 (the
/// occupancy bitmap packs slots into `u64` words).
pub const SLOTS: usize = 1024;
/// log2([`SLOTS`]): bits of the deadline consumed per level.
const BITS: u32 = 10;
/// Bits covered by the whole wheel; deadlines differing from the cursor
/// above this bit go to the sorted spill.
const HORIZON_BITS: u32 = BITS * LEVELS as u32;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// `u64` words per level bitmap.
const WORDS: usize = SLOTS / 64;

/// A 1024-bit occupancy bitmap with a one-word summary tier: bit `w` of
/// `summary` is set iff `words[w]` is non-zero, so the lowest set slot
/// is found with two `trailing_zeros` regardless of how sparse the
/// level is.
#[derive(Debug)]
struct Occupancy {
    summary: u64,
    words: [u64; WORDS],
}

impl Occupancy {
    fn new() -> Self {
        Occupancy {
            summary: 0,
            words: [0; WORDS],
        }
    }

    fn any(&self) -> bool {
        self.summary != 0
    }

    fn set(&mut self, slot: usize) {
        self.words[slot >> 6] |= 1 << (slot & 63);
        self.summary |= 1 << (slot >> 6);
    }

    fn clear_slot(&mut self, slot: usize) {
        let w = slot >> 6;
        self.words[w] &= !(1 << (slot & 63));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// Index of the lowest set slot; meaningless when empty.
    fn lowest(&self) -> usize {
        let w = self.summary.trailing_zeros() as usize;
        (w << 6) | self.words[w].trailing_zeros() as usize
    }

    fn reset(&mut self) {
        self.summary = 0;
        self.words = [0; WORDS];
    }
}

/// A pending entry: fires at `at`, with FIFO tie-breaking via `seq`.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// One level of the hierarchy: [`SLOTS`] slot buckets plus an occupancy
/// bitmap (slot `i` marked iff `slots[i]` is non-empty).
#[derive(Debug)]
struct Level<E> {
    occupied: Occupancy,
    slots: Vec<Vec<Entry<E>>>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            occupied: Occupancy::new(),
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// A hierarchical timing wheel ordering entries by `(deadline, seq)`.
///
/// This is the storage engine of [`EventQueue`](crate::engine::EventQueue);
/// the queue adds the virtual clock, the monotone sequence numbers, and
/// the scheduling-into-the-past panic. The wheel itself only requires
/// that deadlines never precede its internal cursor, which trails the
/// last popped deadline.
///
/// ```
/// use ss_netsim::wheel::TimerWheel;
/// use ss_netsim::SimTime;
///
/// let mut w: TimerWheel<&str> = TimerWheel::new();
/// w.insert(SimTime::from_millis(5), 0, "later");
/// w.insert(SimTime::from_micros(1), 1, "sooner");
/// assert_eq!(w.peek_time(), Some(SimTime::from_micros(1)));
/// assert_eq!(w.pop().unwrap().2, "sooner");
/// assert_eq!(w.pop().unwrap().2, "later");
/// assert!(w.pop().is_none());
/// ```
#[derive(Debug)]
pub struct TimerWheel<E> {
    levels: Box<[Level<E>]>,
    /// Entries beyond the wheel horizon, sorted by `(at, seq)` descending
    /// so the earliest entry pops off the end.
    spill: Vec<Entry<E>>,
    /// The bucket currently being emitted: entries sharing one deadline,
    /// sorted by `seq` descending so the FIFO-first entry pops off the
    /// end.
    ready: Vec<Entry<E>>,
    /// Reusable buffer for cascading a coarse slot into finer levels.
    scratch: Vec<Entry<E>>,
    /// The wheel's notion of "now", in ticks. Always at or before the
    /// earliest pending deadline, and at or before the engine clock.
    cursor: u64,
    /// Cached earliest pending deadline, kept exact by every mutation so
    /// [`TimerWheel::peek_time`] is O(1).
    next_at: Option<SimTime>,
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel with its cursor at tick zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            spill: Vec::new(),
            ready: Vec::new(),
            scratch: Vec::new(),
            cursor: 0,
            next_at: None,
            len: 0,
        }
    }

    /// An empty wheel whose emission bucket is pre-sized for `cap`
    /// entries. Buckets grow on demand and keep their allocations, so
    /// this mainly matters for the first run of a reused queue.
    pub fn with_capacity(cap: usize) -> Self {
        let mut w = Self::new();
        w.ready.reserve(cap);
        w
    }

    /// Resets the wheel to empty with the cursor back at tick zero,
    /// keeping every slot and buffer allocation for reuse.
    pub fn clear(&mut self) {
        for level in self.levels.iter_mut() {
            if level.occupied.any() {
                for slot in level.slots.iter_mut() {
                    slot.clear();
                }
                level.occupied.reset();
            }
        }
        self.spill.clear();
        self.ready.clear();
        self.scratch.clear();
        self.cursor = 0;
        self.next_at = None;
        self.len = 0;
    }

    /// Total entries the wheel's buffers can hold without reallocating,
    /// summed across slots, spill, and the emission bucket.
    pub fn capacity(&self) -> usize {
        let slots: usize = self
            .levels
            .iter()
            .flat_map(|l| l.slots.iter())
            .map(Vec::capacity)
            .sum();
        slots + self.spill.capacity() + self.ready.capacity() + self.scratch.capacity()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest pending deadline, if any. O(1).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_at
    }

    /// Inserts an entry firing at `at` with tie-break rank `seq`.
    ///
    /// Deadlines must not precede the cursor (the last popped deadline);
    /// [`EventQueue`](crate::engine::EventQueue) guarantees this with its
    /// scheduling-into-the-past panic. `seq` values must be unique and
    /// assigned in insertion order for the FIFO tie-break to mean
    /// anything; the wheel itself only requires uniqueness.
    pub fn insert(&mut self, at: SimTime, seq: u64, payload: E) {
        let tick = at.as_micros();
        debug_assert!(tick >= self.cursor, "deadline {at} behind wheel cursor");
        self.len += 1;
        self.next_at = Some(match self.next_at {
            Some(t) if t <= at => t,
            _ => at,
        });
        let e = Entry { at, seq, payload };
        let xor = tick ^ self.cursor;
        if xor == 0 {
            // Same deadline as the bucket being emitted: a fresh `seq` is
            // the largest, so it belongs at the far (descending) end.
            self.ready.insert(0, e);
        } else if xor >> HORIZON_BITS != 0 {
            let key = (at, seq);
            let i = self.spill.partition_point(|s| (s.at, s.seq) > key);
            self.spill.insert(i, e);
        } else {
            self.place(e);
        }
    }

    /// Removes and returns the earliest `(deadline, seq, payload)` entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.ready.is_empty() && !self.settle() {
            return None;
        }
        let e = self.ready.pop().expect("settle left ready empty");
        self.len -= 1;
        self.next_at = match self.ready.last() {
            Some(n) => Some(n.at),
            None => self.scan_next(),
        };
        Some((e.at, e.seq, e.payload))
    }

    /// Files an in-horizon entry into the level matching the highest bit
    /// in which its deadline differs from the cursor, or straight into
    /// the emission bucket when it differs in none (sorted afterwards).
    fn place(&mut self, e: Entry<E>) {
        let tick = e.at.as_micros();
        let xor = tick ^ self.cursor;
        debug_assert!(xor >> HORIZON_BITS == 0, "place beyond horizon");
        if xor == 0 {
            self.ready.push(e);
            return;
        }
        let level = ((63 - xor.leading_zeros()) / BITS) as usize;
        let slot = ((tick >> (BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].slots[slot].push(e);
        self.levels[level].occupied.set(slot);
    }

    /// Advances the cursor to the next pending bucket and fills `ready`
    /// with its entries, cascading coarse slots and refilling from the
    /// spill as needed. Returns false when the wheel is empty.
    fn settle(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        loop {
            let Some(level) = self.levels.iter().position(|l| l.occupied.any()) else {
                // Wheel empty: fold the earliest spill entries back in.
                let Some(first) = self.spill.last() else {
                    return false;
                };
                self.cursor = first.at.as_micros();
                while let Some(e) = self.spill.last() {
                    if (e.at.as_micros() ^ self.cursor) >> HORIZON_BITS != 0 {
                        break;
                    }
                    let e = self.spill.pop().expect("spill entry vanished");
                    self.place(e);
                }
                // Entries landing exactly on the new cursor are the
                // earliest anywhere — emit them now.
                if !self.ready.is_empty() {
                    self.ready.sort_unstable_by_key(|e| Reverse(e.seq));
                    return true;
                }
                continue;
            };
            // All of a level's entries sit in the cursor's current lap,
            // in slots after the cursor's own, so the lowest set bit is
            // the earliest slot and the earliest slot of the lowest
            // occupied level precedes everything at coarser levels.
            let shift = BITS * level as u32;
            let slot = self.levels[level].occupied.lowest();
            let lap_base = self.cursor & !((1u64 << (shift + BITS)) - 1);
            self.cursor = lap_base | ((slot as u64) << shift);
            self.levels[level].occupied.clear_slot(slot);
            if level == 0 {
                // One-tick slots: the slot is a complete same-deadline
                // bucket. Cascaded arrivals may sit out of `seq` order
                // relative to direct inserts, so sort once on drain.
                std::mem::swap(&mut self.ready, &mut self.levels[0].slots[slot]);
                self.ready.sort_unstable_by_key(|e| Reverse(e.seq));
                return true;
            }
            // Cascade: split the coarse slot across finer levels. Entries
            // landing exactly on the cursor go straight to `ready` — and
            // nothing else anywhere can share their deadline, because
            // this was the earliest occupied slot of the lowest occupied
            // level.
            let mut scratch = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut scratch, &mut self.levels[level].slots[slot]);
            for e in scratch.drain(..) {
                self.place(e);
            }
            self.scratch = scratch;
            if !self.ready.is_empty() {
                self.ready.sort_unstable_by_key(|e| Reverse(e.seq));
                return true;
            }
        }
    }

    /// Recomputes the earliest pending deadline without disturbing the
    /// wheel: the earliest slot of the lowest occupied level holds the
    /// global minimum (exact for one-tick level-0 slots, a scan for
    /// coarser ones), and the spill only matters once the wheel is empty.
    fn scan_next(&self) -> Option<SimTime> {
        for (level, l) in self.levels.iter().enumerate() {
            if !l.occupied.any() {
                continue;
            }
            let slot = l.occupied.lowest();
            if level == 0 {
                let tick = (self.cursor & !SLOT_MASK) | slot as u64;
                return Some(SimTime::from_micros(tick));
            }
            return l.slots[slot].iter().map(|e| e.at).min();
        }
        self.spill.last().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(w: &mut TimerWheel<E>) -> Vec<(SimTime, u64)> {
        std::iter::from_fn(|| w.pop().map(|(t, s, _)| (t, s))).collect()
    }

    #[test]
    fn orders_across_levels() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // One deadline per level, inserted in reverse.
        let ticks = [3u64, 100, 5_000, 300_000, 20_000_000, 900_000_000_000];
        for (i, &t) in ticks.iter().rev().enumerate() {
            w.insert(SimTime::from_micros(t), i as u64, 0);
        }
        let order: Vec<u64> = drain(&mut w).iter().map(|&(t, _)| t.as_micros()).collect();
        assert_eq!(order, ticks);
    }

    #[test]
    fn same_tick_pops_in_seq_order_even_after_cascade() {
        let mut w: TimerWheel<&str> = TimerWheel::new();
        let t = SimTime::from_micros(1_000_000);
        // seq 0 starts five levels up and must cascade down; seq 1 is
        // inserted much closer to the deadline, directly into a fine
        // slot. FIFO order must still hold.
        w.insert(t, 0, "first");
        w.insert(SimTime::from_micros(999_990), 1, "warp");
        let (_, _, p) = w.pop().unwrap();
        assert_eq!(p, "warp");
        w.insert(t, 2, "second");
        assert_eq!(w.pop().unwrap().2, "first");
        assert_eq!(w.pop().unwrap().2, "second");
    }

    #[test]
    fn spill_holds_far_future() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        let horizon = 1u64 << HORIZON_BITS;
        w.insert(SimTime::from_micros(horizon * 3), 0, 3);
        w.insert(SimTime::from_micros(5), 1, 1);
        w.insert(SimTime::from_micros(horizon * 2), 2, 2);
        w.insert(SimTime::MAX, 3, 4);
        let seqs: Vec<u64> = drain(&mut w).iter().map(|&(_, s)| s).collect();
        assert_eq!(seqs, vec![1, 2, 0, 3]);
    }

    #[test]
    fn insert_at_cursor_joins_current_bucket_last() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        w.insert(SimTime::from_micros(10), 0, 0);
        w.insert(SimTime::from_micros(10), 1, 1);
        assert_eq!(w.pop().unwrap().1, 0);
        // Cursor now sits at tick 10; a same-tick insert must pop after
        // the rest of the bucket.
        w.insert(SimTime::from_micros(10), 2, 2);
        assert_eq!(w.pop().unwrap().1, 1);
        assert_eq!(w.pop().unwrap().1, 2);
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn peek_tracks_minimum_exactly() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        assert_eq!(w.peek_time(), None);
        w.insert(SimTime::from_secs(100), 0, 0);
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(100)));
        w.insert(SimTime::from_millis(1), 1, 0);
        assert_eq!(w.peek_time(), Some(SimTime::from_millis(1)));
        w.pop();
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(100)));
        w.pop();
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn clear_keeps_allocations_and_resets_cursor() {
        let mut w: TimerWheel<u64> = TimerWheel::with_capacity(32);
        for i in 0..100 {
            w.insert(SimTime::from_micros(i * 977), i, i);
        }
        for _ in 0..60 {
            w.pop();
        }
        let cap = w.capacity();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        assert!(w.capacity() >= cap);
        // Tick zero is schedulable again after a reset.
        w.insert(SimTime::ZERO, 0, 7);
        assert_eq!(w.pop().unwrap().2, 7);
    }
}
