//! Generational-index arenas for per-record simulation state.
//!
//! The protocol hot loops create and destroy one record per announcement
//! cycle — millions per run. Keeping each record behind a `BTreeMap`
//! node means an allocation, a tree rebalance, and a pointer chase per
//! touch. An [`Arena`] replaces that with a flat slot vector: records
//! live in place, freed slots are recycled LIFO, and a [`Handle`] is a
//! `(slot, generation)` pair small enough to ride inside an event
//! payload.
//!
//! The **generation** is what makes stale events safe: a timer scheduled
//! against a record that has since died (and whose slot was reused)
//! presents a handle whose generation no longer matches the slot's, so
//! [`Arena::get`] returns `None` — exactly the `contains(id)` liveness
//! check the map-based code did, but O(1) and allocation-free.
//! DESIGN.md §14 describes how the protocol engines use this.
//!
//! Determinism: the arena itself imposes no iteration order on live
//! records (slot order reflects allocation history). Callers that emit
//! per-record output in bulk — e.g. a crash wiping every live record —
//! must order that traversal by a stable record key, not by slot index,
//! to keep artifacts byte-identical (ss-lint rule D005 applies to what
//! is *written*, not to internal storage).

use core::fmt;

/// A generational reference to a slot in an [`Arena`].
///
/// Handles are plain data: copying one never extends a record's life,
/// and using one after its record was removed is detected (all accessors
/// return `None`) rather than aliasing whatever reused the slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle {
    slot: u32,
    gen: u32,
}

impl Handle {
    /// A handle no arena will ever issue; handy as an "absent" sentinel
    /// in payloads that cannot afford an `Option`.
    pub const DANGLING: Handle = Handle {
        slot: u32::MAX,
        gen: u32::MAX,
    };

    /// The raw slot index (diagnostics only — not stable across reuse).
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The generation the slot had when this handle was issued.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}g{}", self.slot, self.gen)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A flat, generation-checked object pool.
///
/// ```
/// use ss_netsim::arena::Arena;
///
/// let mut jobs: Arena<&str> = Arena::new();
/// let a = jobs.insert("alpha");
/// let b = jobs.insert("beta");
/// assert_eq!(jobs.get(a), Some(&"alpha"));
///
/// // Removal invalidates the handle, even after the slot is reused.
/// assert_eq!(jobs.remove(a), Some("alpha"));
/// let c = jobs.insert("gamma"); // recycles alpha's slot…
/// assert_eq!(jobs.get(a), None); // …but the stale handle stays dead
/// assert_eq!(jobs.get(c), Some(&"gamma"));
/// assert_eq!(jobs.len(), 2);
/// # let _ = b;
/// ```
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Freed slot indices, recycled LIFO so hot records stay in warm
    /// cache lines.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena pre-sized for `cap` live records.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning the handle that names it until removal.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none(), "free list pointed at a live slot");
            s.value = Some(value);
            return Handle { slot, gen: s.gen };
        }
        let slot = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
        self.slots.push(Slot {
            gen: 0,
            value: Some(value),
        });
        Handle { slot, gen: 0 }
    }

    /// Removes and returns the record behind `h`, or `None` if the
    /// handle is stale. The slot's generation bumps so every outstanding
    /// copy of `h` goes dead.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let s = self.slots.get_mut(h.slot as usize)?;
        if s.gen != h.gen || s.value.is_none() {
            return None;
        }
        let v = s.value.take();
        s.gen = s.gen.wrapping_add(1);
        self.free.push(h.slot);
        self.len -= 1;
        v
    }

    /// The record behind `h`, or `None` if the handle is stale.
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&T> {
        match self.slots.get(h.slot as usize) {
            Some(s) if s.gen == h.gen => s.value.as_ref(),
            _ => None,
        }
    }

    /// Mutable access to the record behind `h`, or `None` if stale.
    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        match self.slots.get_mut(h.slot as usize) {
            Some(s) if s.gen == h.gen => s.value.as_mut(),
            _ => None,
        }
    }

    /// True when `h` still names a live record.
    #[inline]
    pub fn contains(&self, h: Handle) -> bool {
        self.get(h).is_some()
    }

    /// Removes every record, invalidating all outstanding handles, while
    /// keeping the slot storage for reuse.
    pub fn clear(&mut self) {
        self.free.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.value.take().is_some() {
                s.gen = s.gen.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        // LIFO recycling: reverse so slot 0 is handed out first again,
        // matching a fresh arena's allocation pattern.
        self.free.reverse();
        self.len = 0;
    }

    /// Visits every live record as `(handle, &value)`, in slot order.
    /// Slot order is an implementation detail — see the module notes on
    /// determinism before serializing anything from this iterator.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    Handle {
                        slot: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let h = a.insert(41);
        *a.get_mut(h).unwrap() += 1;
        assert_eq!(a.get(h), Some(&42));
        assert!(a.contains(h));
        assert_eq!(a.remove(h), Some(42));
        assert_eq!(a.remove(h), None);
        assert!(!a.contains(h));
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handles_stay_dead_after_reuse() {
        let mut a = Arena::new();
        let h1 = a.insert("old");
        a.remove(h1);
        let h2 = a.insert("new");
        assert_eq!(h2.slot(), h1.slot(), "LIFO recycling reuses the slot");
        assert_ne!(h2.generation(), h1.generation());
        assert_eq!(a.get(h1), None);
        assert_eq!(a.get_mut(h1), None);
        assert_eq!(a.remove(h1), None, "stale remove must not evict the tenant");
        assert_eq!(a.get(h2), Some(&"new"));
    }

    #[test]
    fn recycling_is_lifo_and_len_tracks() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..4).map(|i| a.insert(i)).collect();
        a.remove(hs[1]);
        a.remove(hs[3]);
        assert_eq!(a.len(), 2);
        let h = a.insert(9);
        assert_eq!(
            h.slot(),
            hs[3].slot(),
            "most recently freed comes back first"
        );
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn clear_invalidates_everything_and_reuses_slots() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..3).map(|i| a.insert(i)).collect();
        a.clear();
        assert!(a.is_empty());
        for h in &hs {
            assert!(!a.contains(*h));
        }
        let h = a.insert(7);
        assert_eq!(h.slot(), 0, "cleared arena allocates like a fresh one");
        assert_eq!(a.get(h), Some(&7));
    }

    #[test]
    fn iter_visits_live_records_only() {
        let mut a = Arena::new();
        let h0 = a.insert(10);
        let h1 = a.insert(11);
        let h2 = a.insert(12);
        a.remove(h1);
        let seen: Vec<_> = a.iter().map(|(h, &v)| (h, v)).collect();
        assert_eq!(seen, vec![(h0, 10), (h2, 12)]);
    }

    #[test]
    fn dangling_never_resolves() {
        let mut a: Arena<u8> = Arena::new();
        a.insert(1);
        assert_eq!(a.get(Handle::DANGLING), None);
        assert!(!a.contains(Handle::DANGLING));
    }
}
