//! `ss-metrics`: a deterministic, zero-wall-clock observability layer.
//!
//! The paper's whole argument rests on measuring a running soft-state
//! system — consistency `c(t)`, receive latency `T_rec`, wasted
//! bandwidth `W` (§2.1, §3). This module gives those measurements a
//! first-class home: a [`MetricsRegistry`] of named counters, gauges,
//! sim-time histograms, and windowed time averages, plus a typed
//! [`EventLog`] of protocol events. Everything is keyed by **sim time**
//! only (ss-lint rule D001), uses ordered containers (D002), and takes
//! no ambient randomness (D003), so a [`MetricsSnapshot`] — and its
//! JSONL export — is byte-identical across double runs with one seed.
//!
//! # Design
//!
//! Metrics are registered once by name and then addressed by a typed
//! handle ([`CounterId`], [`GaugeId`], [`HistogramId`], [`AverageId`]) —
//! a plain index into a dense `Vec`. Hot-path updates are therefore an
//! array index away, with no string hashing or allocation per event.
//! Names are namespaced with dots (`tx.hot`, `consistency.c_t`) and a
//! snapshot lists them in lexicographic order.

mod events;
pub mod sketch;
mod timeavg;

pub use events::{EventKind, EventLog, EventRecord, QueueClass};
pub use sketch::QuantileSketch;
pub use timeavg::WindowedTimeAverage;

use crate::stats::DurationHistogram;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version stamp carried by every JSONL artifact this workspace emits
/// (metrics, traces, profile, bench). `ss-report` refuses artifacts
/// whose version does not match its own, so a schema change can never
/// be silently mis-parsed into a bogus cross-run comparison.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered duration histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a registered windowed time average.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AverageId(usize);

/// Handle to a registered quantile sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchId(usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
    Average,
    Sketch,
}

/// A registry of named metrics for one simulation run.
///
/// Register each metric once (typically at sim construction), keep the
/// returned handle, and update through it on the hot path. At the end of
/// a run, [`MetricsRegistry::snapshot`] freezes every metric into a
/// [`MetricsSnapshot`] for reporting and JSONL export.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    names: BTreeMap<String, (Kind, usize)>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, DurationHistogram)>,
    averages: Vec<(String, WindowedTimeAverage)>,
    sketches: Vec<(String, QuantileSketch)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn claim(&mut self, name: &str, kind: Kind, idx: usize) -> Option<usize> {
        match self.names.get(name) {
            Some(&(k, existing)) => {
                assert!(
                    k == kind,
                    "metric {name:?} already registered with a different kind"
                );
                Some(existing)
            }
            None => {
                self.names.insert(name.to_string(), (kind, idx));
                None
            }
        }
    }

    /// Registers (or re-opens) a counter starting at zero.
    pub fn counter(&mut self, name: &str) -> CounterId {
        let idx = self.counters.len();
        match self.claim(name, Kind::Counter, idx) {
            Some(existing) => CounterId(existing),
            None => {
                self.counters.push((name.to_string(), 0));
                CounterId(idx)
            }
        }
    }

    /// Registers (or re-opens) a gauge starting at zero.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        let idx = self.gauges.len();
        match self.claim(name, Kind::Gauge, idx) {
            Some(existing) => GaugeId(existing),
            None => {
                self.gauges.push((name.to_string(), 0.0));
                GaugeId(idx)
            }
        }
    }

    /// Registers (or re-opens) a duration histogram.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        let idx = self.histograms.len();
        match self.claim(name, Kind::Histogram, idx) {
            Some(existing) => HistogramId(existing),
            None => {
                self.histograms
                    .push((name.to_string(), DurationHistogram::new()));
                HistogramId(idx)
            }
        }
    }

    /// Registers (or re-opens) a windowed time average of a
    /// piecewise-constant signal starting at `(start, v0)`. A zero
    /// `window` records the overall mean but no per-window curve.
    pub fn time_average(
        &mut self,
        name: &str,
        start: SimTime,
        v0: f64,
        window: SimDuration,
    ) -> AverageId {
        let idx = self.averages.len();
        match self.claim(name, Kind::Average, idx) {
            Some(existing) => AverageId(existing),
            None => {
                self.averages.push((
                    name.to_string(),
                    WindowedTimeAverage::windowed(start, v0, window),
                ));
                AverageId(idx)
            }
        }
    }

    /// Registers (or re-opens) a bounded-memory quantile sketch
    /// ([`QuantileSketch`]): the estimator of choice for distributions
    /// too large for exact retention (staleness, age of information,
    /// `T_rec` at population scale).
    pub fn sketch(&mut self, name: &str) -> SketchId {
        let idx = self.sketches.len();
        match self.claim(name, Kind::Sketch, idx) {
            Some(existing) => SketchId(existing),
            None => {
                self.sketches
                    .push((name.to_string(), QuantileSketch::new()));
                SketchId(idx)
            }
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge to `v`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Records one duration sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, d: SimDuration) {
        self.histograms[id.0].1.record(d);
    }

    /// Read access to a histogram (for quantile queries mid-run).
    pub fn histogram_value(&self, id: HistogramId) -> &DurationHistogram {
        &self.histograms[id.0].1
    }

    /// Records one duration sample into a quantile sketch.
    #[inline]
    pub fn observe_sketch(&mut self, id: SketchId, d: SimDuration) {
        self.sketches[id.0].1.record_duration(d);
    }

    /// Read access to a sketch (for quantile queries mid-run).
    pub fn sketch_value(&self, id: SketchId) -> &QuantileSketch {
        &self.sketches[id.0].1
    }

    /// Folds an externally built sketch (e.g. a per-worker partial)
    /// into a registered one. Merge order never affects the result.
    pub fn merge_sketch(&mut self, id: SketchId, other: &QuantileSketch) {
        self.sketches[id.0].1.merge(other);
    }

    /// Records that a time-averaged signal takes value `v` from `t` on.
    #[inline]
    pub fn record_sample(&mut self, id: AverageId, t: SimTime, v: f64) {
        self.averages[id.0].1.update(t, v);
    }

    /// Read access to a time average (for `mean_until` queries mid-run).
    pub fn average_value(&self, id: AverageId) -> &WindowedTimeAverage {
        &self.averages[id.0].1
    }

    /// Freezes every metric into a snapshot taken at sim time `at`.
    /// Time averages are integrated to `at` and their trailing window
    /// flushed; the registry can keep running afterwards.
    pub fn snapshot(&mut self, at: SimTime) -> MetricsSnapshot {
        let mut values = BTreeMap::new();
        for (name, v) in &self.counters {
            values.insert(name.clone(), MetricValue::Counter(*v));
        }
        for (name, v) in &self.gauges {
            values.insert(name.clone(), MetricValue::Gauge(*v));
        }
        for (name, h) in &self.histograms {
            values.insert(
                name.clone(),
                MetricValue::Histogram(HistogramSummary::of(h)),
            );
        }
        for (name, s) in &self.sketches {
            values.insert(name.clone(), MetricValue::Sketch(SketchSummary::of(s)));
        }
        for (name, a) in &mut self.averages {
            let mean = a.mean_until(at);
            a.finish_windows(at);
            values.insert(
                name.clone(),
                MetricValue::TimeAverage {
                    mean,
                    last: a.current(),
                    windows: a
                        .windows()
                        .iter()
                        .map(|&(t, v)| (t.as_micros(), v))
                        .collect(),
                },
            );
        }
        MetricsSnapshot {
            at_us: at.as_micros(),
            values,
        }
    }
}

/// Fixed summary of a [`DurationHistogram`] at snapshot time, in
/// microseconds of sim time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact mean, µs.
    pub mean_us: u64,
    /// Smallest sample, µs.
    pub min_us: u64,
    /// Largest sample, µs.
    pub max_us: u64,
    /// Median (bucket resolution), µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
}

impl HistogramSummary {
    fn of(h: &DurationHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean_us: h.mean().as_micros(),
            min_us: h.min().as_micros(),
            max_us: h.max().as_micros(),
            p50_us: h.quantile(0.5).as_micros(),
            p90_us: h.quantile(0.9).as_micros(),
            p99_us: h.quantile(0.99).as_micros(),
        }
    }
}

/// Fixed summary of a [`QuantileSketch`] at snapshot time, in
/// microseconds of sim time. Count, mean, min, and max are exact; the
/// quantiles carry the sketch's documented relative-error bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact mean, µs.
    pub mean_us: u64,
    /// Smallest sample (exact), µs.
    pub min_us: u64,
    /// Largest sample (exact), µs.
    pub max_us: u64,
    /// Median estimate, µs.
    pub p50_us: u64,
    /// 90th percentile estimate, µs.
    pub p90_us: u64,
    /// 99th percentile estimate, µs.
    pub p99_us: u64,
    /// 99.9th percentile estimate, µs.
    pub p999_us: u64,
}

impl SketchSummary {
    fn of(s: &QuantileSketch) -> Self {
        SketchSummary {
            count: s.count(),
            mean_us: s.mean(),
            min_us: s.min(),
            max_us: s.max(),
            p50_us: s.quantile(0.5),
            p90_us: s.quantile(0.9),
            p99_us: s.quantile(0.99),
            p999_us: s.quantile(0.999),
        }
    }
}

/// One frozen metric value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-set instantaneous value.
    Gauge(f64),
    /// Duration distribution summary.
    Histogram(HistogramSummary),
    /// Bounded-memory quantile-sketch summary.
    Sketch(SketchSummary),
    /// Time-averaged signal: overall mean, final value, and the
    /// per-window means as `(window end µs, mean)` pairs.
    TimeAverage {
        /// Exact time average over the whole run.
        mean: f64,
        /// Signal value at snapshot time.
        last: f64,
        /// Completed window means, `(window end in µs, mean)`.
        windows: Vec<(u64, f64)>,
    },
}

/// Every metric of a run frozen at one sim time, name-sorted.
///
/// Snapshots are plain data: comparable with `==`, printable with
/// `{:#?}` (the double-run harness), and exportable as JSON Lines.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// The sim time (µs) the snapshot was taken at.
    pub at_us: u64,
    /// Metric name → frozen value, in lexicographic name order.
    pub values: BTreeMap<String, MetricValue>,
}

/// Writes an f64 as deterministic JSON: Rust's shortest-roundtrip
/// `Display` for finite values, `null` otherwise.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl MetricsSnapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// The value of a counter metric; panics if absent or mistyped.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            other => panic!("no counter {name:?} in snapshot (found {other:?})"),
        }
    }

    /// The value of a gauge metric; panics if absent or mistyped.
    pub fn gauge(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            other => panic!("no gauge {name:?} in snapshot (found {other:?})"),
        }
    }

    /// The histogram summary of a metric; panics if absent or mistyped.
    pub fn histogram(&self, name: &str) -> &HistogramSummary {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => h,
            other => panic!("no histogram {name:?} in snapshot (found {other:?})"),
        }
    }

    /// The sketch summary of a metric; panics if absent or mistyped.
    pub fn sketch(&self, name: &str) -> &SketchSummary {
        match self.values.get(name) {
            Some(MetricValue::Sketch(s)) => s,
            other => panic!("no sketch {name:?} in snapshot (found {other:?})"),
        }
    }

    /// The overall mean of a time-average metric; panics if absent or
    /// mistyped.
    pub fn time_average(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(MetricValue::TimeAverage { mean, .. }) => *mean,
            other => panic!("no time average {name:?} in snapshot (found {other:?})"),
        }
    }

    /// Serializes the snapshot as JSON Lines: one metric per line in
    /// name order, each line `{"metric":NAME,"type":KIND,...}`.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_labeled("")
    }

    /// Like [`MetricsSnapshot::to_jsonl`], but prefixes every line with
    /// a `"run"` label so several runs can share one file (e.g. one
    /// sweep point per label in a figure's artifact).
    pub fn to_jsonl_labeled(&self, run: &str) -> String {
        let mut out = String::with_capacity(96 * (self.values.len() + 1));
        self.write_jsonl_labeled(run, &mut out);
        out
    }

    /// Appends the labeled JSONL export directly into `out`.
    ///
    /// This is the sweep-assembly hot path: a figure artifact
    /// concatenates one snapshot per sweep point, and building each
    /// point's lines in a temporary `String` only to copy it into the
    /// accumulator made the assembly O(runs × metrics) in allocations.
    /// Writing into the shared buffer keeps it to one amortized
    /// allocation total. Bytes produced are identical to
    /// [`MetricsSnapshot::to_jsonl_labeled`].
    pub fn write_jsonl_labeled(&self, run: &str, out: &mut String) {
        for (name, value) in &self.values {
            out.push('{');
            if !run.is_empty() {
                let _ = write!(out, "\"run\":\"{run}\",");
            }
            let _ = write!(out, "\"metric\":\"{name}\",\"t_us\":{}", self.at_us);
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str(",\"type\":\"gauge\",\"value\":");
                    push_json_f64(out, *v);
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"histogram\",\"count\":{},\"mean_us\":{},\"min_us\":{},\
                         \"max_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}",
                        h.count, h.mean_us, h.min_us, h.max_us, h.p50_us, h.p90_us, h.p99_us
                    );
                }
                MetricValue::Sketch(s) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"sketch\",\"count\":{},\"mean_us\":{},\"min_us\":{},\
                         \"max_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{}",
                        s.count,
                        s.mean_us,
                        s.min_us,
                        s.max_us,
                        s.p50_us,
                        s.p90_us,
                        s.p99_us,
                        s.p999_us
                    );
                }
                MetricValue::TimeAverage {
                    mean,
                    last,
                    windows,
                } => {
                    out.push_str(",\"type\":\"time_average\",\"mean\":");
                    push_json_f64(out, *mean);
                    out.push_str(",\"last\":");
                    push_json_f64(out, *last);
                    out.push_str(",\"windows\":[");
                    for (i, (t, v)) in windows.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{t},");
                        push_json_f64(out, *v);
                        out.push(']');
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_snapshot() {
        let mut reg = MetricsRegistry::new();
        let tx = reg.counter("tx.hot");
        let g = reg.gauge("loss.observed");
        let h = reg.histogram("latency.t_rec");
        let c = reg.time_average("consistency.c_t", SimTime::ZERO, 1.0, SimDuration::ZERO);

        reg.inc(tx);
        reg.add(tx, 4);
        reg.set_gauge(g, 0.25);
        reg.observe(h, SimDuration::from_millis(10));
        reg.observe(h, SimDuration::from_millis(30));
        reg.record_sample(c, SimTime::from_secs(5), 0.0);

        let snap = reg.snapshot(SimTime::from_secs(10));
        assert_eq!(snap.counter("tx.hot"), 5);
        assert_eq!(snap.gauge("loss.observed"), 0.25);
        assert_eq!(snap.histogram("latency.t_rec").count, 2);
        assert_eq!(snap.histogram("latency.t_rec").mean_us, 20_000);
        // 1.0 for 5s then 0.0 for 5s.
        assert!((snap.time_average("consistency.c_t") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reopening_same_name_returns_same_handle() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("tx.hot");
        let b = reg.counter("tx.hot");
        assert_eq!(a, b);
        reg.inc(a);
        reg.inc(b);
        assert_eq!(reg.counter_value(a), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_is_reproducible_and_sorted() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let b = reg.counter("b.second");
            let a = reg.counter("a.first");
            reg.inc(b);
            reg.inc(a);
            reg.snapshot(SimTime::from_secs(1))
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_jsonl(), s2.to_jsonl());
        let names: Vec<_> = s1.values.keys().cloned().collect();
        assert_eq!(names, vec!["a.first".to_string(), "b.second".to_string()]);
        // JSONL order follows name order.
        let lines: Vec<_> = s1.to_jsonl().lines().map(str::to_string).collect();
        assert!(lines[0].contains("a.first"));
        assert!(lines[1].contains("b.second"));
    }

    #[test]
    fn jsonl_encodes_every_kind() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let g = reg.gauge("bad");
        let h = reg.histogram("lat");
        let a = reg.time_average("avg", SimTime::ZERO, 2.0, SimDuration::from_secs(1));
        reg.inc(c);
        reg.set_gauge(g, f64::NAN);
        reg.observe(h, SimDuration::from_micros(100));
        reg.record_sample(a, SimTime::from_secs(2), 0.0);
        let out = reg
            .snapshot(SimTime::from_secs(2))
            .to_jsonl_labeled("p=0.1");
        assert!(out.contains("{\"run\":\"p=0.1\",\"metric\":\"avg\","));
        assert!(out.contains(
            "\"type\":\"time_average\",\"mean\":2,\"last\":0,\"windows\":[[1000000,2],[2000000,2]]"
        ));
        assert!(
            out.contains("\"metric\":\"bad\",\"t_us\":2000000,\"type\":\"gauge\",\"value\":null")
        );
        assert!(out.contains("\"type\":\"counter\",\"value\":1"));
        assert!(out.contains("\"type\":\"histogram\",\"count\":1,\"mean_us\":100"));
        // Every line parses as a standalone JSON object (shape check).
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn sketch_registers_snapshots_and_serializes() {
        let mut reg = MetricsRegistry::new();
        let s = reg.sketch("staleness.sketch");
        for ms in [5u64, 10, 20, 40, 80] {
            reg.observe_sketch(s, SimDuration::from_millis(ms));
        }
        let mut partial = QuantileSketch::new();
        partial.record_duration(SimDuration::from_millis(160));
        reg.merge_sketch(s, &partial);
        let snap = reg.snapshot(SimTime::from_secs(1));
        let sk = snap.sketch("staleness.sketch");
        assert_eq!(sk.count, 6);
        assert_eq!(sk.min_us, 5_000);
        assert_eq!(sk.max_us, 160_000);
        assert!(sk.p50_us <= sk.p90_us && sk.p90_us <= sk.p99_us && sk.p99_us <= sk.p999_us);
        let line = snap.to_jsonl();
        assert!(line.contains(
            "\"metric\":\"staleness.sketch\",\"t_us\":1000000,\"type\":\"sketch\",\"count\":6"
        ));
        assert!(line.contains("\"p999_us\":"));
    }

    #[test]
    fn snapshot_can_continue_running() {
        let mut reg = MetricsRegistry::new();
        let a = reg.time_average("c", SimTime::ZERO, 1.0, SimDuration::ZERO);
        let s1 = reg.snapshot(SimTime::from_secs(1));
        assert!((s1.time_average("c") - 1.0).abs() < 1e-12);
        reg.record_sample(a, SimTime::from_secs(1), 0.0);
        let s2 = reg.snapshot(SimTime::from_secs(2));
        assert!((s2.time_average("c") - 0.5).abs() < 1e-12);
    }
}
