//! Typed, sim-timestamped event traces.
//!
//! Where [`crate::trace::Trace`] carries free-form strings for debugging,
//! [`EventLog`] records **typed** protocol events — announce, deliver,
//! drop, expire, NACK, hot/cold queue transitions — so experiments and
//! external tooling can consume a machine-readable account of a run.
//! Events carry only sim time (ss-lint rule D001: no wall clock), so a
//! log is byte-identical across double runs with the same seed.

use crate::time::SimTime;
use std::fmt::Write as _;

/// Which announcement queue an event refers to (two-queue model, §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueueClass {
    /// The hot queue: records not yet known to be delivered.
    Hot,
    /// The cold queue: background re-announcements.
    Cold,
}

impl QueueClass {
    fn label(self) -> &'static str {
        match self {
            QueueClass::Hot => "hot",
            QueueClass::Cold => "cold",
        }
    }
}

/// The kind of a protocol event, spanning the paper's model (§3–§5) and
/// SSTP (§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A record arrived at the sender (birth).
    Arrival,
    /// A live record was overwritten with a new value.
    Update,
    /// A record was announced (transmitted) from the given queue.
    Announce(QueueClass),
    /// An announcement reached the receiver and was applied.
    Deliver,
    /// An announcement was lost in the channel.
    Drop,
    /// A record died / its soft state expired.
    Expire,
    /// A NACK was generated or delivered on the feedback channel.
    Nack,
    /// A record moved cold → hot (feedback-triggered promotion, §5).
    Promote,
    /// A record moved hot → cold (believed delivered).
    Demote,
    /// A repair query was sent (SSTP §6).
    Query,
    /// A summary packet (root or node digest) was sent (SSTP §6).
    Summary,
    /// A receiver report was sent (SSTP §6).
    Report,
}

impl EventKind {
    /// Stable machine-readable label used in JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Arrival => "arrival",
            EventKind::Update => "update",
            EventKind::Announce(_) => "announce",
            EventKind::Deliver => "deliver",
            EventKind::Drop => "drop",
            EventKind::Expire => "expire",
            EventKind::Nack => "nack",
            EventKind::Promote => "promote",
            EventKind::Demote => "demote",
            EventKind::Query => "query",
            EventKind::Summary => "summary",
            EventKind::Report => "report",
        }
    }
}

/// One recorded event: a kind, the sim time it happened, and the record
/// key it concerns (0 when no single record is involved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
    /// The record (job) id the event concerns; 0 for aggregate events.
    pub key: u64,
}

/// A capacity-bounded, deterministic log of typed events.
///
/// The first `capacity` events are kept and later ones only counted, so a
/// long run's memory stays bounded while the log remains deterministic
/// (a ring buffer would keep a seed-dependent *suffix*; keeping the
/// *prefix* makes double-run comparison trivial). Capacity 0 disables
/// recording entirely and makes [`EventLog::log`] a no-op.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<EventRecord>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// A disabled log: records nothing, counts nothing.
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// A log keeping the first `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// True when the log records events (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event, or counts it as dropped once full.
    pub fn log(&mut self, at: SimTime, kind: EventKind, key: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(EventRecord { at, kind, key });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Recorded events of one kind (`Announce` matches either queue).
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &EventRecord> {
        self.events.iter().filter(move |e| match (e.kind, kind) {
            (EventKind::Announce(_), EventKind::Announce(_)) => true,
            (a, b) => a == b,
        })
    }

    /// Serializes the log as JSON Lines: one event per line, in order,
    /// e.g. `{"t_us":1500000,"event":"announce","queue":"hot","key":7}`.
    /// A trailing summary line reports the drop count when nonzero.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"t_us\":{},\"event\":\"{}\"",
                e.at.as_micros(),
                e.kind.label()
            );
            if let EventKind::Announce(q) = e.kind {
                let _ = write!(out, ",\"queue\":\"{}\"", q.label());
            }
            let _ = writeln!(out, ",\"key\":{}}}", e.key);
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "{{\"dropped_events\":{}}}", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_a_noop() {
        let mut log = EventLog::disabled();
        log.log(SimTime::from_secs(1), EventKind::Deliver, 3);
        assert!(!log.is_enabled());
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn keeps_prefix_and_counts_overflow() {
        let mut log = EventLog::with_capacity(2);
        log.log(SimTime::from_secs(1), EventKind::Arrival, 1);
        log.log(SimTime::from_secs(2), EventKind::Deliver, 1);
        log.log(SimTime::from_secs(3), EventKind::Expire, 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.events()[0].kind, EventKind::Arrival);
        assert_eq!(log.events()[1].kind, EventKind::Deliver);
    }

    #[test]
    fn of_kind_matches_any_announce_queue() {
        let mut log = EventLog::with_capacity(8);
        log.log(SimTime::ZERO, EventKind::Announce(QueueClass::Hot), 1);
        log.log(SimTime::ZERO, EventKind::Announce(QueueClass::Cold), 2);
        log.log(SimTime::ZERO, EventKind::Drop, 2);
        let announces: Vec<_> = log.of_kind(EventKind::Announce(QueueClass::Hot)).collect();
        assert_eq!(announces.len(), 2);
        assert_eq!(log.of_kind(EventKind::Drop).count(), 1);
        assert_eq!(log.of_kind(EventKind::Nack).count(), 0);
    }

    #[test]
    fn jsonl_shape_is_stable() {
        let mut log = EventLog::with_capacity(1);
        log.log(
            SimTime::from_millis(1500),
            EventKind::Announce(QueueClass::Hot),
            7,
        );
        log.log(SimTime::from_secs(2), EventKind::Deliver, 7);
        assert_eq!(
            log.to_jsonl(),
            "{\"t_us\":1500000,\"event\":\"announce\",\"queue\":\"hot\",\"key\":7}\n\
             {\"dropped_events\":1}\n"
        );
    }
}
