//! Windowed time averages of piecewise-constant signals.
//!
//! The paper's headline metric `E[c(t)]` is "the time average of the
//! instantaneous system consistency over the entire lifetime of a system"
//! (§2.1). [`WindowedTimeAverage`] integrates such a signal exactly —
//! like [`crate::stats::TimeWeightedMean`] — and can additionally close
//! fixed-width **sim-time windows**, yielding the bucketed
//! `E[c(t)]`-per-window curve the Figure 8 style plots need without
//! storing every sample.

use crate::time::{SimDuration, SimTime};

/// An exact time average of a piecewise-constant signal, with optional
/// fixed-width window means.
///
/// Call [`WindowedTimeAverage::update`] whenever the signal changes; the
/// previous value is integrated over the elapsed span. When constructed
/// with a window width, every completed window's mean is recorded and
/// available from [`WindowedTimeAverage::windows`].
#[derive(Clone, Debug)]
pub struct WindowedTimeAverage {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    window: Option<SimDuration>,
    win_start: SimTime,
    win_integral: f64,
    windows: Vec<(SimTime, f64)>,
}

impl WindowedTimeAverage {
    /// Starts integrating at `start` with initial signal value `v0`,
    /// without window tracking.
    pub fn new(start: SimTime, v0: f64) -> Self {
        WindowedTimeAverage {
            start,
            last_t: start,
            last_v: v0,
            integral: 0.0,
            window: None,
            win_start: start,
            win_integral: 0.0,
            windows: Vec::new(),
        }
    }

    /// Starts integrating at `start` with initial value `v0`, closing a
    /// window of mean values every `window` of sim time. A zero width
    /// disables window tracking.
    pub fn windowed(start: SimTime, v0: f64, window: SimDuration) -> Self {
        let mut w = Self::new(start, v0);
        if window > SimDuration::ZERO {
            w.window = Some(window);
        }
        w
    }

    /// Integrates the current value forward to `t`, closing any window
    /// boundaries crossed on the way.
    fn advance(&mut self, t: SimTime) {
        self.integral += self.last_v * t.since(self.last_t).as_secs_f64();
        if let Some(w) = self.window {
            let mut cursor = self.last_t;
            let mut win_end = self.win_start + w;
            while t >= win_end {
                self.win_integral += self.last_v * win_end.since(cursor).as_secs_f64();
                self.windows
                    .push((win_end, self.win_integral / w.as_secs_f64()));
                cursor = win_end;
                self.win_start = win_end;
                self.win_integral = 0.0;
                win_end = self.win_start + w;
            }
            self.win_integral += self.last_v * t.since(cursor).as_secs_f64();
        }
        self.last_t = t;
    }

    /// Records that the signal takes value `v` from time `t` onward.
    /// Panics if `t` precedes the previous update.
    ///
    /// Several updates at the **same** `t` are legal and common (one
    /// dispatched event can change the signal more than once): each
    /// earlier value is integrated over a zero-width span — contributing
    /// nothing — and the **last value wins** from `t` onward. This is
    /// the piecewise-constant, right-continuous convention: the signal
    /// at `t` is whatever was set last at `t`.
    pub fn update(&mut self, t: SimTime, v: f64) {
        self.advance(t);
        self.last_v = v;
    }

    /// The current signal value.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// The exact time average over `[start, end]`. Panics if `end`
    /// precedes the last update.
    ///
    /// A **zero-duration observation window** (`end == start`) has no
    /// span to average over; by convention the result is the current
    /// signal value — the only value the signal ever took — rather than
    /// `NaN` from `0.0 / 0.0`. A signal that was updated once and never
    /// again (a single-sample average) likewise integrates that one
    /// value over the whole remaining span, so the mean equals it.
    pub fn mean_until(&self, end: SimTime) -> f64 {
        let tail = end.since(self.last_t).as_secs_f64();
        let total = end.since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_v;
        }
        (self.integral + self.last_v * tail) / total
    }

    /// Completed windows so far as `(window end, window mean)` pairs.
    /// Call [`WindowedTimeAverage::finish_windows`] first to flush the
    /// trailing partial window at the end of a run.
    pub fn windows(&self) -> &[(SimTime, f64)] {
        &self.windows
    }

    /// Integrates to `end` and closes the final (possibly partial)
    /// window so that `windows()` covers the whole run.
    ///
    /// A trailing window of **zero width** (when `end` lands exactly on
    /// a window boundary, or the whole run is zero-duration) is *not*
    /// emitted: there is no span for it to summarize, and a `0/0` mean
    /// would poison the export with `NaN`.
    pub fn finish_windows(&mut self, end: SimTime) {
        self.advance(end);
        if self.window.is_some() {
            let span = end.since(self.win_start).as_secs_f64();
            if span > 0.0 {
                self.windows.push((end, self.win_integral / span));
                self.win_start = end;
                self.win_integral = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_time_weighted_mean() {
        // Signal: 0 on [0,2), 1 on [2,3), 0.5 on [3,5].
        let mut m = WindowedTimeAverage::new(SimTime::ZERO, 0.0);
        m.update(SimTime::from_secs(2), 1.0);
        m.update(SimTime::from_secs(3), 0.5);
        let avg = m.mean_until(SimTime::from_secs(5));
        assert!((avg - 0.4).abs() < 1e-12, "{avg}");
        assert_eq!(m.current(), 0.5);
        assert!(m.windows().is_empty());
    }

    #[test]
    fn empty_span_returns_current() {
        let m = WindowedTimeAverage::new(SimTime::from_secs(1), 0.7);
        assert_eq!(m.mean_until(SimTime::from_secs(1)), 0.7);
    }

    #[test]
    fn windows_close_on_boundaries() {
        // 1-second windows; signal 1.0 on [0, 1.5), 0.0 after.
        let mut m = WindowedTimeAverage::windowed(SimTime::ZERO, 1.0, SimDuration::from_secs(1));
        m.update(SimTime::from_millis(1500), 0.0);
        m.update(SimTime::from_secs(3), 0.0);
        let w = m.windows();
        assert_eq!(w.len(), 3);
        assert!((w[0].1 - 1.0).abs() < 1e-12, "window 1: {}", w[0].1);
        assert!((w[1].1 - 0.5).abs() < 1e-12, "window 2: {}", w[1].1);
        assert!((w[2].1 - 0.0).abs() < 1e-12, "window 3: {}", w[2].1);
        assert_eq!(w[0].0, SimTime::from_secs(1));
    }

    #[test]
    fn update_crossing_many_windows_closes_each() {
        let mut m = WindowedTimeAverage::windowed(SimTime::ZERO, 2.0, SimDuration::from_secs(1));
        m.update(SimTime::from_secs(5), 0.0);
        assert_eq!(m.windows().len(), 5);
        for (_, mean) in m.windows() {
            assert!((mean - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn finish_windows_flushes_partial_tail() {
        let mut m = WindowedTimeAverage::windowed(SimTime::ZERO, 1.0, SimDuration::from_secs(2));
        m.update(SimTime::from_secs(1), 0.0);
        m.finish_windows(SimTime::from_secs(3));
        let w = m.windows();
        // [0,2): mean 0.5; [2,3): mean 0.0 (partial).
        assert_eq!(w.len(), 2);
        assert!((w[0].1 - 0.5).abs() < 1e-12);
        assert!((w[1].1 - 0.0).abs() < 1e-12);
        assert_eq!(w[1].0, SimTime::from_secs(3));
        // Mean over the full span is unaffected by window bookkeeping.
        assert!((m.mean_until(SimTime::from_secs(3)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_window_disables_tracking() {
        let mut m = WindowedTimeAverage::windowed(SimTime::ZERO, 1.0, SimDuration::ZERO);
        m.update(SimTime::from_secs(10), 0.0);
        m.finish_windows(SimTime::from_secs(10));
        assert!(m.windows().is_empty());
    }

    #[test]
    fn zero_duration_observation_window() {
        // A run that ends the instant it starts: the mean is the signal's
        // only value, not NaN, and no zero-width window is emitted.
        let mut m =
            WindowedTimeAverage::windowed(SimTime::from_secs(3), 0.25, SimDuration::from_secs(1));
        assert_eq!(m.mean_until(SimTime::from_secs(3)), 0.25);
        m.finish_windows(SimTime::from_secs(3));
        assert!(m.windows().is_empty());
        assert_eq!(m.current(), 0.25);
    }

    #[test]
    fn single_sample_average_equals_the_sample() {
        // One update, then silence: the value holds for the whole span.
        let mut m = WindowedTimeAverage::new(SimTime::ZERO, 0.0);
        m.update(SimTime::ZERO, 0.8);
        assert!((m.mean_until(SimTime::from_secs(7)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn same_time_updates_last_value_wins() {
        // Two changes within one dispatched event: the intermediate value
        // spans zero time and contributes nothing to the integral.
        let mut m = WindowedTimeAverage::new(SimTime::ZERO, 0.0);
        m.update(SimTime::from_secs(2), 100.0);
        m.update(SimTime::from_secs(2), 1.0);
        // [0,2): 0.0; [2,4): 1.0 -> mean 0.5. The 100.0 never existed.
        assert!((m.mean_until(SimTime::from_secs(4)) - 0.5).abs() < 1e-12);
        assert_eq!(m.current(), 1.0);
    }

    #[test]
    fn same_time_updates_on_window_boundary() {
        // Identical-time updates sitting exactly on a window boundary
        // close the crossed window once, with the pre-update value.
        let mut m = WindowedTimeAverage::windowed(SimTime::ZERO, 1.0, SimDuration::from_secs(1));
        m.update(SimTime::from_secs(1), 0.5);
        m.update(SimTime::from_secs(1), 0.0);
        assert_eq!(m.windows().len(), 1);
        assert!((m.windows()[0].1 - 1.0).abs() < 1e-12);
        m.finish_windows(SimTime::from_secs(2));
        assert_eq!(m.windows().len(), 2);
        assert!((m.windows()[1].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn finish_on_boundary_emits_no_zero_width_window() {
        let mut m = WindowedTimeAverage::windowed(SimTime::ZERO, 1.0, SimDuration::from_secs(1));
        m.update(SimTime::from_secs(2), 0.0);
        // end == the just-closed boundary: nothing further to flush.
        m.finish_windows(SimTime::from_secs(2));
        assert_eq!(m.windows().len(), 2);
        assert_eq!(m.windows()[1].0, SimTime::from_secs(2));
    }
}
