//! Bounded-memory, deterministic quantile sketches for duration
//! distributions.
//!
//! The paper's distributional claims — staleness, age of information,
//! recovery time `T_rec` — need quantiles at population scale, where
//! retaining exact samples is impossible. [`QuantileSketch`] is a
//! DDSketch-style log-bucketed estimator with three properties the
//! sim's determinism contract demands:
//!
//! 1. **Integer-only bucketing.** Bucket indices come from
//!    `leading_zeros`, never from `f64::log`, so two platforms (or two
//!    runs) can never disagree on which bucket a sample lands in.
//! 2. **Commutative merge.** Merging is element-wise `u64` addition, so
//!    per-worker sketches merged in *any* order serialize to identical
//!    bytes — the property the sweep executor relies on.
//! 3. **Bounded memory.** At most [`QuantileSketch::MAX_BUCKETS`]
//!    buckets (~15 KiB) cover the whole `u64` microsecond range; the
//!    backing vector grows lazily to the largest observed bucket, so a
//!    sketch over sub-hour sim horizons stays a few KiB.
//!
//! # Accuracy contract
//!
//! Values below 32 µs are exact. Above that, each octave splits into 32
//! sub-buckets, so a bucket spans a factor of `1 + 1/32` and the
//! midpoint representative is within **1.6 % relative error** of any
//! value in the bucket (3.2 % worst case if the true value sits at a
//! bucket edge and the min/max clamp does not apply). `p50/p90/p99/p999`
//! reported in [`MetricsSnapshot`](super::MetricsSnapshot) inherit that
//! bound. DESIGN.md §15 states the contract alongside the profiler's
//! determinism rules.

use crate::time::SimDuration;
use std::fmt::Write as _;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (and the threshold below which values are
/// exact).
const SUB: usize = 1 << SUB_BITS;

/// A deterministic log-bucketed quantile sketch over `u64` microsecond
/// values.
///
/// ```
/// use ss_netsim::metrics::QuantileSketch;
/// use ss_netsim::SimDuration;
///
/// let mut s = QuantileSketch::new();
/// for ms in 1..=1000u64 {
///     s.record_duration(SimDuration::from_millis(ms));
/// }
/// let p50 = s.quantile(0.5);
/// // Within the documented 3.2% relative error of the exact median.
/// assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.032);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Bucket counts, indexed by [`bucket_index`]; grown lazily.
    counts: Vec<u64>,
    count: u64,
    /// Exact sum for the exact mean (u128: 2^64 µs-sized samples can
    /// overflow u64 over a long merge chain).
    sum: u128,
    min: u64,
    max: u64,
}

/// The bucket a value lands in. Exact below [`SUB`]; log2 with
/// [`SUB_BITS`] sub-bucket bits above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let h = 63 - v.leading_zeros();
        (((h - SUB_BITS + 1) as usize) << SUB_BITS) | ((v >> (h - SUB_BITS)) as usize & (SUB - 1))
    }
}

/// Lower bound and width of bucket `idx` (inverse of [`bucket_index`]).
#[inline]
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, 1)
    } else {
        let g = (idx >> SUB_BITS) as u32;
        let h = g + SUB_BITS - 1;
        let sub = (idx & (SUB - 1)) as u64;
        let w = 1u64 << (h - SUB_BITS);
        ((1u64 << h) + sub * w, w)
    }
}

impl QuantileSketch {
    /// Upper bound on the number of buckets: 32 exact low buckets plus
    /// 32 per octave for octaves 5..=63.
    pub const MAX_BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

    /// Worst-case relative error of a reported quantile (bucket edge to
    /// midpoint): `1/SUB`.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one value (microseconds of sim time).
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum += v as u128;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Records one duration sample.
    #[inline]
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Folds `other` into `self`. Element-wise addition: merging any
    /// permutation of the same sketches yields an identical sketch (and
    /// identical [`QuantileSketch::serialize`] bytes).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.sum += other.sum;
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Smallest recorded sample (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket-midpoint estimate,
    /// clamped to the exact observed `[min, max]`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (lo, w) = bucket_bounds(idx);
                return (lo + w / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Heap bytes currently held by the sketch (the bounded-memory
    /// claim, checkable in tests).
    pub fn heap_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u64>()
    }

    /// Canonical serialization: a single line
    /// `qsketch.v1 count=N sum=S min=M max=X buckets=i:c;i:c;...`
    /// (sparse, ascending index). Two sketches with the same contents —
    /// however they were built or merged — produce identical bytes.
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(64 + 8 * self.counts.len());
        let _ = write!(
            out,
            "qsketch.v1 count={} sum={} min={} max={} buckets=",
            self.count,
            self.sum,
            self.min(),
            self.max()
        );
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                let _ = write!(out, "{i}:{c};");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..32u64 {
            s.record(v);
        }
        // Every value below SUB has its own bucket.
        assert_eq!(s.quantile(1.0 / 64.0), 0);
        assert_eq!(s.quantile(1.0), 31);
        assert_eq!(s.mean(), (0..32).sum::<u64>() / 32);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < QuantileSketch::MAX_BUCKETS, "idx {idx} for {v}");
            let (lo, w) = bucket_bounds(idx);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(v - lo < w, "v {v} outside bucket [{lo}, {lo}+{w})");
        }
    }

    #[test]
    fn bucket_indices_are_monotone() {
        let mut prev = 0;
        for h in 0..64u32 {
            let v = 1u64 << h;
            for v in [v, v + v / 3, v + v / 2] {
                let idx = bucket_index(v);
                assert!(idx >= prev, "index not monotone at {v}");
                prev = idx;
            }
        }
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut s = QuantileSketch::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut v = 7u64;
        for _ in 0..10_000 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sample = v >> 44; // ~20-bit values
            s.record(sample);
            exact.push(sample);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1] as f64;
            let est = s.quantile(q) as f64;
            let err = (est - truth).abs() / truth.max(1.0);
            assert!(
                err <= 2.0 * QuantileSketch::RELATIVE_ERROR,
                "q={q}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_bulk_record() {
        let vals: Vec<u64> = (0..1000u64).map(|i| i * i % 50_000).collect();
        let mut whole = QuantileSketch::new();
        for &v in &vals {
            whole.record(v);
        }
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = QuantileSketch::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged.serialize(), whole.serialize());
        assert_eq!(merged, whole);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = QuantileSketch::new();
        let mut v = 1u64;
        for _ in 0..63 {
            s.record(v);
            v = v.wrapping_shl(1) | 1;
        }
        assert!(s.counts.len() <= QuantileSketch::MAX_BUCKETS);
        assert!(s.heap_bytes() <= 2 * QuantileSketch::MAX_BUCKETS * 8);
    }
}
