//! Packet-loss models for the lossy announcement channel.
//!
//! §3 of the paper argues that the consistency metric "is insensitive to
//! the exact pattern of losses, but is only affected by the mean of the
//! packet loss process". We therefore provide both an i.i.d. model
//! ([`Bernoulli`]) and a bursty two-state Markov model ([`GilbertElliott`])
//! with a matching mean, so that claim can be tested rather than assumed
//! (see the `loss-pattern` experiment). [`Pattern`] gives scripted losses
//! for unit tests.

use crate::rng::SimRng;

/// A cloneable, plain-data specification of a loss process (configs must
/// be plain data; the trait object is built per run). This is the single
/// audited description of loss for the whole workspace: the core
/// protocol configs, the SSTP session, the UDP endpoints, and `ss-chaos`
/// loss-override episodes all build their models from it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossSpec {
    /// Independent loss with the given probability — the analysis model.
    Bernoulli(f64),
    /// Gilbert burst loss with the given mean rate and mean burst length
    /// in packets — for the loss-pattern-insensitivity experiment.
    Bursty {
        /// Long-run mean loss probability.
        mean: f64,
        /// Mean number of consecutive losses per burst.
        burst_len: f64,
    },
    /// No loss at all.
    None,
}

impl LossSpec {
    /// Instantiates the loss process.
    pub fn build(&self) -> Box<dyn LossModel> {
        match *self {
            LossSpec::Bernoulli(p) => Box::new(Bernoulli::new(p)),
            LossSpec::Bursty { mean, burst_len } => {
                Box::new(GilbertElliott::bursty(mean, burst_len))
            }
            LossSpec::None => Box::new(Bernoulli::new(0.0)),
        }
    }

    /// Instantiates the loss process with draw batching where it is
    /// outcome-preserving: Bernoulli specs build a [`BatchedBernoulli`],
    /// everything else builds exactly what [`LossSpec::build`] would.
    ///
    /// **Only for models driven by a dedicated loss stream** (the
    /// protocol engines' `rng_loss`, a [`crate::link::Channel`]'s own
    /// rng). The batched model prefetches 64 outcomes ahead on its
    /// stream; if anything else draws from the same stream in between,
    /// those draws land at different positions than unbatched and the
    /// run diverges. The `ss-chaos` [`crate::faults::FaultSchedule`]
    /// must keep [`LossSpec::build`]: its stream is shared across
    /// episode kinds.
    pub fn build_batched(&self) -> Box<dyn LossModel> {
        match *self {
            LossSpec::Bernoulli(p) => Box::new(BatchedBernoulli::new(p)),
            LossSpec::Bursty { mean, burst_len } => {
                Box::new(GilbertElliott::bursty(mean, burst_len))
            }
            LossSpec::None => Box::new(BatchedBernoulli::new(0.0)),
        }
    }

    /// The long-run mean loss probability.
    pub fn mean(&self) -> f64 {
        match *self {
            LossSpec::Bernoulli(p) => p,
            LossSpec::Bursty { mean, .. } => mean,
            LossSpec::None => 0.0,
        }
    }
}

/// Decides, per transmission, whether a packet is lost.
pub trait LossModel {
    /// Draws the fate of the next transmission: `true` means lost.
    fn is_lost(&mut self, rng: &mut SimRng) -> bool;

    /// The long-run mean loss probability of this process.
    fn mean_loss_rate(&self) -> f64;
}

/// Independent (i.i.d.) loss with fixed probability `p` — the process the
/// paper's analysis assumes.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// A Bernoulli loss process with per-packet loss probability `p` in `[0,1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        Bernoulli { p }
    }
}

impl LossModel for Bernoulli {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }
    fn mean_loss_rate(&self) -> f64 {
        self.p
    }
}

/// [`Bernoulli`] with prefetched draws: one refill computes 64 outcomes
/// (each still consuming one xoshiro draw, in stream order) so the
/// per-packet hot path is a shift and a mask instead of a float
/// multiply-compare.
///
/// The outcome sequence is **bit-for-bit identical** to [`Bernoulli`]'s
/// on the same stream: outcome `i` is decided by draw `i` either way
/// (see [`SimRng::bernoulli_block`]), and the integer threshold
/// reproduces `next_f64() < p` exactly (see
/// [`SimRng::bernoulli_threshold`]). Like [`SimRng::chance`], the
/// degenerate rates `p = 0` and `p = 1` consume no draws at all.
///
/// Requires a stream dedicated to this model's draws — see
/// [`LossSpec::build_batched`] for the sharing rules.
#[derive(Clone, Copy, Debug)]
pub struct BatchedBernoulli {
    p: f64,
    /// `ceil(p * 2^53)`; compared against the high 53 bits of each draw.
    threshold: u64,
    /// Prefetched outcomes, consumed from bit 0 upward.
    outcomes: u64,
    /// Outcomes left in `outcomes` before a refill.
    left: u32,
}

impl BatchedBernoulli {
    /// A batched Bernoulli loss process with loss probability `p` in `[0,1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        let threshold = if p > 0.0 && p < 1.0 {
            SimRng::bernoulli_threshold(p)
        } else {
            0
        };
        BatchedBernoulli {
            p,
            threshold,
            outcomes: 0,
            left: 0,
        }
    }
}

impl LossModel for BatchedBernoulli {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        // The degenerate rates never draw — exactly `chance()`'s clamp.
        if self.p <= 0.0 {
            return false;
        }
        if self.p >= 1.0 {
            return true;
        }
        if self.left == 0 {
            self.outcomes = rng.bernoulli_block(self.threshold);
            self.left = 64;
        }
        let lost = self.outcomes & 1 != 0;
        self.outcomes >>= 1;
        self.left -= 1;
        lost
    }

    fn mean_loss_rate(&self) -> f64 {
        self.p
    }
}

/// The classic two-state Gilbert–Elliott burst-loss channel.
///
/// The channel alternates between a Good and a Bad state; each packet first
/// advances the state (with transition probabilities `p_gb`, `p_bg`), then
/// is lost with the state's loss rate. The stationary probability of Bad is
/// `π_B = p_gb / (p_gb + p_bg)`, giving mean loss
/// `π_G·loss_good + π_B·loss_bad`.
#[derive(Clone, Copy, Debug)]
pub struct GilbertElliott {
    p_gb: f64,
    p_bg: f64,
    loss_good: f64,
    loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Builds the channel from its four parameters; starts in Good.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, v) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name}={v} out of range");
        }
        assert!(
            p_gb + p_bg > 0.0,
            "degenerate chain: both transition probabilities zero"
        );
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// Constructs a bursty channel with a target mean loss rate and mean
    /// burst length (in packets), using a pure Gilbert model
    /// (`loss_good = 0`, `loss_bad = 1`). With mean burst length `L`,
    /// `p_bg = 1/L`; the mean loss rate pins `p_gb`.
    ///
    /// Panics when the pair is infeasible (`mean >= 1`, or the implied
    /// `p_gb` exceeds 1).
    pub fn bursty(mean_loss: f64, mean_burst_len: f64) -> Self {
        assert!((0.0..1.0).contains(&mean_loss), "mean loss {mean_loss}");
        assert!(mean_burst_len >= 1.0, "burst length {mean_burst_len}");
        let p_bg = 1.0 / mean_burst_len;
        // mean = pi_B = p_gb / (p_gb + p_bg)  =>  p_gb = mean*p_bg/(1-mean)
        let p_gb = mean_loss * p_bg / (1.0 - mean_loss);
        assert!(
            p_gb <= 1.0,
            "infeasible (mean_loss={mean_loss}, burst={mean_burst_len}) => p_gb={p_gb}"
        );
        GilbertElliott::new(p_gb, p_bg, 0.0, 1.0)
    }
}

impl LossModel for GilbertElliott {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        let flip = if self.in_bad {
            rng.chance(self.p_bg)
        } else {
            rng.chance(self.p_gb)
        };
        if flip {
            self.in_bad = !self.in_bad;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.chance(p)
    }

    fn mean_loss_rate(&self) -> f64 {
        let pi_b = self.p_gb / (self.p_gb + self.p_bg);
        (1.0 - pi_b) * self.loss_good + pi_b * self.loss_bad
    }
}

/// A scripted loss sequence that repeats cyclically — for deterministic
/// tests ("drop exactly the 2nd and 5th packets").
#[derive(Clone, Debug)]
pub struct Pattern {
    drops: Vec<bool>,
    idx: usize,
}

impl Pattern {
    /// A cyclic pattern; `true` entries are dropped. Panics on empty input.
    pub fn new(drops: Vec<bool>) -> Self {
        assert!(!drops.is_empty(), "empty loss pattern");
        Pattern { drops, idx: 0 }
    }

    /// A pattern that never drops.
    pub fn lossless() -> Self {
        Pattern::new(vec![false])
    }
}

impl LossModel for Pattern {
    fn is_lost(&mut self, _rng: &mut SimRng) -> bool {
        let lost = self.drops[self.idx];
        self.idx = (self.idx + 1) % self.drops.len();
        lost
    }

    fn mean_loss_rate(&self) -> f64 {
        self.drops.iter().filter(|&&d| d).count() as f64 / self.drops.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate(model: &mut dyn LossModel, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        let lost = (0..n).filter(|_| model.is_lost(&mut rng)).count();
        lost as f64 / n as f64
    }

    #[test]
    fn bernoulli_mean_matches() {
        let mut m = Bernoulli::new(0.4);
        assert_eq!(m.mean_loss_rate(), 0.4);
        let r = empirical_rate(&mut m, 200_000, 1);
        assert!((r - 0.4).abs() < 0.01, "empirical {r}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::new(2);
        let mut z = Bernoulli::new(0.0);
        let mut o = Bernoulli::new(1.0);
        for _ in 0..100 {
            assert!(!z.is_lost(&mut rng));
            assert!(o.is_lost(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_p() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn gilbert_elliott_mean_matches() {
        let mut m = GilbertElliott::bursty(0.2, 5.0);
        assert!((m.mean_loss_rate() - 0.2).abs() < 1e-12);
        let r = empirical_rate(&mut m, 400_000, 3);
        assert!((r - 0.2).abs() < 0.01, "empirical {r}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Compare run-length of losses against Bernoulli at equal mean:
        // the Markov channel must produce longer loss bursts on average.
        fn mean_burst(model: &mut dyn LossModel, n: usize) -> f64 {
            let mut rng = SimRng::new(7);
            let (mut bursts, mut losses, mut in_burst) = (0u64, 0u64, false);
            for _ in 0..n {
                if model.is_lost(&mut rng) {
                    losses += 1;
                    if !in_burst {
                        bursts += 1;
                        in_burst = true;
                    }
                } else {
                    in_burst = false;
                }
            }
            losses as f64 / bursts.max(1) as f64
        }
        let b = mean_burst(&mut Bernoulli::new(0.2), 200_000);
        let g = mean_burst(&mut GilbertElliott::bursty(0.2, 8.0), 200_000);
        assert!(g > 2.0 * b, "GE burst {g} vs Bernoulli {b}");
        assert!((g - 8.0).abs() < 1.0, "GE burst length {g} should be ~8");
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn bursty_rejects_infeasible() {
        let _ = GilbertElliott::bursty(0.9, 1.0);
    }

    #[test]
    fn loss_spec_builds_matching_models() {
        assert_eq!(LossSpec::Bernoulli(0.3).mean(), 0.3);
        assert_eq!(LossSpec::None.mean(), 0.0);
        let b = LossSpec::Bursty {
            mean: 0.2,
            burst_len: 4.0,
        };
        assert!((b.mean() - 0.2).abs() < 1e-12);
        let mut model = b.build();
        assert!((model.mean_loss_rate() - 0.2).abs() < 1e-12);
        let r = empirical_rate(model.as_mut(), 100_000, 1);
        assert!((r - 0.2).abs() < 0.02);
    }

    #[test]
    fn batched_bernoulli_is_draw_for_draw_identical() {
        // The whole point of the batched model: same seed, same p, same
        // outcome sequence as the unbatched model — across p values with
        // both exact and fractional 53-bit thresholds.
        for p in [0.001, 0.1, 0.25, 1.0 / 3.0, 0.5, 0.9] {
            let mut plain = Bernoulli::new(p);
            let mut batched = BatchedBernoulli::new(p);
            let mut rng_a = SimRng::new(42);
            let mut rng_b = SimRng::new(42);
            for i in 0..1000 {
                assert_eq!(
                    plain.is_lost(&mut rng_a),
                    batched.is_lost(&mut rng_b),
                    "p={p} draw {i}"
                );
            }
        }
    }

    #[test]
    fn batched_bernoulli_extremes_consume_no_draws() {
        let mut z = BatchedBernoulli::new(0.0);
        let mut o = BatchedBernoulli::new(1.0);
        let mut rng = SimRng::new(5);
        for _ in 0..10 {
            assert!(!z.is_lost(&mut rng));
            assert!(o.is_lost(&mut rng));
        }
        let mut fresh = SimRng::new(5);
        assert_eq!(rng.next_u64(), fresh.next_u64(), "stream untouched");
    }

    #[test]
    fn build_batched_matches_build() {
        for spec in [
            LossSpec::Bernoulli(0.3),
            LossSpec::Bursty {
                mean: 0.2,
                burst_len: 4.0,
            },
            LossSpec::None,
        ] {
            let mut a = spec.build();
            let mut b = spec.build_batched();
            assert_eq!(a.mean_loss_rate(), b.mean_loss_rate());
            let mut rng_a = SimRng::new(17);
            let mut rng_b = SimRng::new(17);
            for _ in 0..500 {
                assert_eq!(a.is_lost(&mut rng_a), b.is_lost(&mut rng_b));
            }
        }
    }

    #[test]
    fn pattern_cycles() {
        let mut rng = SimRng::new(0);
        let mut p = Pattern::new(vec![false, true, false]);
        assert!((p.mean_loss_rate() - 1.0 / 3.0).abs() < 1e-12);
        let fates: Vec<bool> = (0..6).map(|_| p.is_lost(&mut rng)).collect();
        assert_eq!(fates, vec![false, true, false, false, true, false]);
        assert!(!Pattern::lossless().is_lost(&mut rng));
    }
}
