//! The discrete-event engine: a time-ordered event queue and a run loop.
//!
//! The engine is deliberately minimal and generic: a protocol simulation
//! defines its own event payload type `E` and a [`World`] that reacts to
//! each event, possibly scheduling more. Ties in time break by insertion
//! order (a monotone sequence number), so runs are fully deterministic.
//!
//! Storage is a hierarchical timing wheel ([`crate::wheel::TimerWheel`]),
//! chosen because the soft-state workload is overwhelmingly timers at
//! fixed offsets (TTL expirations, refresh cycles): those insert and pop
//! in O(1) instead of a heap's O(log n). The pop order — ascending
//! `(time, seq)` — is identical to the binary heap this queue used
//! through PR 6, so every committed artifact is byte-for-byte unchanged.
//! DESIGN.md §14 documents the geometry and the determinism contract.

use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// A deterministic time-ordered event queue with a virtual clock.
///
/// `pop` advances the clock to the popped event's timestamp; scheduling in
/// the past is a logic error and panics.
///
/// Ties in time break FIFO — by a monotone insertion sequence number —
/// so a run's event trajectory is a pure function of what was scheduled,
/// never of queue internals:
///
/// ```
/// use ss_netsim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// let t = SimTime::from_millis(3);
/// q.schedule(t, "scheduled first");
/// q.schedule(t, "scheduled second");
/// q.schedule(SimTime::from_millis(1), "earlier beats both");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "earlier beats both")));
/// assert_eq!(q.pop(), Some((t, "scheduled first")));
/// assert_eq!(q.pop(), Some((t, "scheduled second")));
/// assert_eq!(q.now(), t); // the clock follows the popped events
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with room for `cap` pending events before the
    /// wheel's buffers reallocate. Protocol runners size this for their
    /// steady-state event population so the hot loop never grows them.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            wheel: TimerWheel::with_capacity(cap),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Resets the queue to its freshly-constructed state — clock at zero,
    /// sequence and dispatch counters at zero, no pending events — while
    /// **keeping the wheel's allocations**. A cleared queue is
    /// indistinguishable from a new one (same FIFO tie-breaking, same
    /// panics on past scheduling), which is what lets sweep runners reuse
    /// one allocation across many independent simulation points.
    pub fn clear(&mut self) {
        self.wheel.clear();
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.popped = 0;
    }

    /// Number of pending events the wheel's buffers can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        self.wheel.capacity()
    }

    /// The current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    /// Panics if `at` is before the current clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.wheel.insert(at, seq, payload);
    }

    /// Schedules `payload` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _seq, payload) = self.wheel.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.popped += 1;
        Some((at, payload))
    }

    /// Timestamp of the earliest pending event, if any. O(1): the wheel
    /// keeps the minimum cached.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Total events dispatched so far (a cheap progress/diagnostic counter).
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Total events ever scheduled (dispatched + still pending). Together
    /// with [`EventQueue::dispatched`] this feeds the engine's own
    /// `engine.events_*` metrics.
    pub fn scheduled(&self) -> u64 {
        self.seq
    }
}

impl<E> crate::time::Clock for EventQueue<E> {
    fn now(&self) -> SimTime {
        self.now()
    }
}

/// A simulation world: reacts to events, scheduling follow-ups on the queue.
pub trait World {
    /// The event payload this world understands.
    type Event;

    /// Handles one event at the queue's current time.
    fn handle(&mut self, q: &mut EventQueue<Self::Event>, ev: Self::Event);
}

/// Runs `world` until the clock passes `end` or the queue drains.
///
/// Events stamped exactly at `end` still run; the first event strictly
/// later than `end` is left in the queue (and the clock is *not* advanced
/// to it), so metrics can be finalized at `end` precisely.
pub fn run_until<W: World>(world: &mut W, q: &mut EventQueue<W::Event>, end: SimTime) {
    while let Some(at) = q.peek_time() {
        if at > end {
            break;
        }
        let (_, ev) = q.pop().expect("peeked event vanished");
        world.handle(q, ev);
    }
}

/// Runs `world` until the queue drains completely.
pub fn run_to_completion<W: World>(world: &mut W, q: &mut EventQueue<W::Event>) {
    while let Some((_, ev)) = q.pop() {
        world.handle(q, ev);
    }
}

/// A [`World`] that carries an `ss-trace` [`Tracer`](crate::trace::Tracer),
/// letting the run loop record one dispatch event per queue pop.
pub trait TracedWorld: World {
    /// The world's tracer (disabled tracers make tracing free).
    fn tracer(&mut self) -> &mut crate::trace::Tracer;

    /// A stable static label for an event payload, shown on the engine
    /// lane of exported traces.
    fn event_label(ev: &Self::Event) -> &'static str;
}

/// [`run_until`] plus per-dispatch tracing: before each event is
/// handled, a zero-width dispatch span is recorded on the engine lane.
///
/// Protocol runners pick this loop only when their tracer is enabled,
/// keeping the untraced hot loop free of even the per-event branch.
/// Tracing observes and never schedules, so the event trajectory is
/// identical to [`run_until`]'s.
pub fn run_until_traced<W: TracedWorld>(world: &mut W, q: &mut EventQueue<W::Event>, end: SimTime) {
    while let Some(at) = q.peek_time() {
        if at > end {
            break;
        }
        let (_, ev) = q.pop().expect("peeked event vanished");
        world.tracer().dispatch(at, W::event_label(&ev));
        world.handle(q, ev);
    }
}

/// [`run_until`] plus `ss-profile` phase attribution: each queue pop is
/// charged to [`profile::WHEEL_PHASE`](crate::profile::WHEEL_PHASE)
/// (wheel advance and cascade) and each dispatch runs inside an
/// `ev:<label>` phase scope, so every dispatched event lands in exactly
/// one named root phase. The tracer dispatch mark is kept, so a run
/// that is both traced and profiled loses nothing.
///
/// Profiling observes and never schedules or draws randomness, so the
/// event trajectory — and every artifact — is identical to
/// [`run_until`]'s. Runners pick this loop only when
/// [`profile::is_enabled`](crate::profile::is_enabled), keeping the
/// plain hot loop free of even the per-event branch.
pub fn run_until_profiled<W: TracedWorld>(
    world: &mut W,
    q: &mut EventQueue<W::Event>,
    end: SimTime,
) {
    loop {
        let ev = {
            let _pop = crate::profile::scope(crate::profile::WHEEL_PHASE);
            match q.peek_time() {
                Some(at) if at <= end => q.pop().expect("peeked event vanished"),
                _ => break,
            }
        };
        let (at, ev) = ev;
        let label = W::event_label(&ev);
        world.tracer().dispatch(at, label);
        let _dispatch = crate::profile::dispatch_scope(label);
        world.handle(q, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.now(), SimTime::from_secs(2));
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.dispatched(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(e, 2);
    }

    /// A counter world: each event below `limit` schedules a successor 1s out.
    struct Counter {
        fired: Vec<u64>,
        limit: u64,
    }
    impl World for Counter {
        type Event = u64;
        fn handle(&mut self, q: &mut EventQueue<u64>, ev: u64) {
            self.fired.push(ev);
            if ev + 1 < self.limit {
                q.schedule_in(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = Counter {
            fired: vec![],
            limit: 100,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0);
        run_until(&mut w, &mut q, SimTime::from_secs(5));
        // Events at t = 0..=5 fire (payloads 0..=5); t = 6 stays queued.
        assert_eq!(w.fired, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(6)));
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn cleared_queue_behaves_like_new() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(16);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.pop();
        let cap = q.capacity();
        q.clear();

        // Fully reset: clock, counters, pending events.
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.dispatched(), 0);
        assert_eq!(q.scheduled(), 0);
        // The allocation survives the reset.
        assert!(q.capacity() >= cap);
        // The clock reset means "the past" is rewritable again.
        q.schedule(SimTime::ZERO, 9);
        assert_eq!(q.pop().unwrap().1, 9);
    }

    #[test]
    fn cleared_queue_keeps_deterministic_fifo_tie_breaking() {
        // The tie-break invariant (equal timestamps pop in insertion
        // order) must hold identically on a fresh queue and on one that
        // has been used and cleared — reuse must not perturb `seq`.
        let order_after = |q: &mut EventQueue<u32>| {
            let t = SimTime::from_secs(7);
            for i in 0..16 {
                q.schedule(t, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect::<Vec<u32>>()
        };
        let mut fresh: EventQueue<u32> = EventQueue::new();
        let expected = order_after(&mut fresh);

        let mut reused: EventQueue<u32> = EventQueue::with_capacity(4);
        // Dirty the queue thoroughly, then clear.
        for i in 0..64 {
            reused.schedule(SimTime::from_secs(i), i as u32);
        }
        for _ in 0..40 {
            reused.pop();
        }
        reused.clear();
        assert_eq!(order_after(&mut reused), expected);
    }

    #[test]
    fn run_to_completion_drains() {
        let mut w = Counter {
            fired: vec![],
            limit: 10,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0);
        run_to_completion(&mut w, &mut q);
        assert_eq!(w.fired.len(), 10);
        assert!(q.is_empty());
    }
}
