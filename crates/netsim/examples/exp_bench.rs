//! Prices the RNG primitives on the simulation hot path: `next_u64`
//! (the xoshiro base draw) and `exp_duration` (exponential offset →
//! integer ticks, one `ln` + `round` per call). Wall-clock figures
//! only — touches no artifacts. See docs/PERF.md.

use ss_netsim::{SimDuration, SimRng};

fn main() {
    let mut r = SimRng::new(42);
    let n = 50_000_000u64;
    let t0 = std::time::Instant::now();
    let mut acc = SimDuration::ZERO;
    for _ in 0..n {
        acc += r.exp_duration(128.0);
    }
    let dt = t0.elapsed();
    println!(
        "exp_duration: {:.1} ns/call (acc {acc})",
        dt.as_nanos() as f64 / n as f64
    );
    let t0 = std::time::Instant::now();
    let mut k = 0u64;
    for _ in 0..n {
        k = k.wrapping_add(r.next_u64());
    }
    let dt = t0.elapsed();
    println!(
        "next_u64: {:.2} ns/call ({k})",
        dt.as_nanos() as f64 / n as f64
    );
}
