//! Prices one `EventQueue` cycle (pop + exponential draw + reschedule)
//! at a configurable workload shape: `queue_bench [rate] [population]`
//! drives the queue with exponential offsets at `rate` events per
//! simulated second and `population` pending events — `16 3`
//! approximates `fig3`'s shape, `128 32` a busier queue. Wall-clock
//! figures only — touches no artifacts. See docs/PERF.md; this is how
//! the wheel geometry in DESIGN.md §14 was chosen.

use ss_netsim::{EventQueue, SimRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(128.0);
    let pop: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let mut q: EventQueue<u64> = EventQueue::with_capacity(256);
    let mut r = SimRng::new(7);
    let n = 20_000_000u64;
    for i in 0..pop {
        q.schedule_in(r.exp_duration(rate), i);
    }
    let t0 = std::time::Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        let (_, p) = q.pop().unwrap();
        acc = acc.wrapping_add(p);
        q.schedule_in(r.exp_duration(rate), p);
    }
    let dt = t0.elapsed();
    println!(
        "pop+exp+schedule_in: {:.1} ns/cycle ({:.1}M events/s) acc={acc}",
        dt.as_nanos() as f64 / n as f64,
        n as f64 / dt.as_secs_f64() / 1e6
    );
}
