//! The §3 analytic model of open-loop announce/listen.
//!
//! Records enter a single FIFO server (the announcement channel, rate
//! `μ_ch`) in the *inconsistent* class at rate λ. After each service
//! (transmission), the record dies with probability `p_d`; a surviving
//! inconsistent record becomes *consistent* with probability `1 − p_c`
//! (the announcement got through) or re-enters inconsistent with
//! probability `p_c`; a surviving consistent record re-enters consistent
//! (Table 1). The paper closes the model with Jackson's theorem for a
//! single queue with two job classes.
//!
//! Closed forms implemented here (see DESIGN.md §3 for the derivation):
//!
//! ```text
//! λ_I = λ / (1 − p_c(1 − p_d))
//! λ_C = λ (1 − p_c)(1 − p_d) / (p_d · (1 − p_c(1 − p_d)))
//! λ̂  = λ_I + λ_C = λ / p_d
//! ρ   = λ̂ / μ_ch = λ / (p_d μ_ch)
//! q   = λ_C / λ̂ = (1 − p_c)(1 − p_d) / (1 − p_c(1 − p_d))
//! E[c(t)]         = q · ρ              (paper's unnormalized sum)
//! E[c(t) | n > 0] = q                  (conditioned on a non-empty system)
//! W (wasted bw)   = λ_C / λ̂ = q        (Figure 4)
//! ```
//!
//! The solution is valid only when `ρ < 1`, i.e. `p_d > λ/μ_ch` — exactly
//! the paper's "`p_d > λ/μ` ⇒ the solution is valid" condition. The
//! saturated variants clip `ρ` at 1 so Figure 3 can sweep through the
//! paper's near-saturation operating points.

/// Parameters of the open-loop announce/listen queueing model.
///
/// `lambda` and `mu` may be in any common rate unit (packets/s in the
/// simulations; kbps works too since only the ratio enters).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoop {
    /// Rate of new/updated records entering the table (λ).
    pub lambda: f64,
    /// Announcement channel service rate (μ_ch).
    pub mu: f64,
    /// Per-transmission channel loss probability (p_c in the paper;
    /// the probability an announcement misses the subscriber).
    pub p_loss: f64,
    /// Per-service death probability (p_d): the chance a record's lifetime
    /// ends at a given transmission.
    pub p_death: f64,
}

impl OpenLoop {
    /// Builds the model, validating parameter ranges.
    pub fn new(lambda: f64, mu: f64, p_loss: f64, p_death: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "bad lambda {lambda}");
        assert!(mu > 0.0 && mu.is_finite(), "bad mu {mu}");
        assert!((0.0..=1.0).contains(&p_loss), "bad p_loss {p_loss}");
        assert!(
            (0.0..=1.0).contains(&p_death) && p_death > 0.0,
            "p_death must be in (0, 1], got {p_death}"
        );
        OpenLoop {
            lambda,
            mu,
            p_loss,
            p_death,
        }
    }

    /// Effective arrival rate of inconsistent-class work, `λ_I`.
    pub fn lambda_i(&self) -> f64 {
        self.lambda / (1.0 - self.p_loss * (1.0 - self.p_death))
    }

    /// Effective arrival rate of consistent-class work, `λ_C`.
    pub fn lambda_c(&self) -> f64 {
        let s = 1.0 - self.p_loss * (1.0 - self.p_death);
        self.lambda * (1.0 - self.p_loss) * (1.0 - self.p_death) / (self.p_death * s)
    }

    /// Total service demand `λ̂ = λ_I + λ_C = λ/p_d`: each record is
    /// announced `1/p_d` times on average before it dies.
    pub fn lambda_hat(&self) -> f64 {
        self.lambda / self.p_death
    }

    /// Server utilization `ρ = λ̂/μ_ch`.
    pub fn rho(&self) -> f64 {
        self.lambda_hat() / self.mu
    }

    /// True when the Jackson solution is valid: `p_d > λ/μ_ch`.
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// The consistent-class fraction of service,
    /// `q = (1−p_c)(1−p_d)/(1−p_c(1−p_d))` — the probability that a job in
    /// the system is consistent, and the long-run fraction of transmissions
    /// that are redundant.
    pub fn consistent_fraction(&self) -> f64 {
        let num = (1.0 - self.p_loss) * (1.0 - self.p_death);
        num / (1.0 - self.p_loss * (1.0 - self.p_death))
    }

    /// The paper's average system consistency `E[c(t)] = q·ρ`: the sum of
    /// `E[n_C/(n_I+n_C) | n] P[n]` over non-empty states, **not**
    /// normalized by `P[n>0]`. `ρ` is clipped at 1 so the Figure 3 sweep
    /// remains defined through its near-saturation points; at or above
    /// saturation the busy probability is 1 and `E[c(t)] → q`.
    pub fn consistency_unnormalized(&self) -> f64 {
        self.consistent_fraction() * self.rho().min(1.0)
    }

    /// Average consistency conditioned on the system being non-empty,
    /// `E[c(t) | n>0] = q`. This is the variant to compare against
    /// simulations that only score instants with live data.
    pub fn consistency_busy(&self) -> f64 {
        self.consistent_fraction()
    }

    /// Average consistency counting empty-system instants as fully
    /// consistent (sender and receiver trivially agree on an empty table):
    /// `(1−ρ) + ρ·q`. The most natural convention for end-to-end systems.
    pub fn consistency_empty_is_consistent(&self) -> f64 {
        let rho = self.rho().min(1.0);
        (1.0 - rho) + rho * self.consistent_fraction()
    }

    /// Fraction of channel bandwidth consumed by redundant retransmissions
    /// of already-consistent records (Figure 4): `W = λ_C/λ̂ = q`.
    pub fn wasted_bandwidth_fraction(&self) -> f64 {
        self.consistent_fraction()
    }

    /// Joint stationary probability of `n_i` inconsistent and `n_c`
    /// consistent records, by Jackson's theorem for one queue with two
    /// classes:
    ///
    /// ```text
    /// p(n_I, n_C) = C(n_I+n_C, n_I) (λ_I/λ̂)^{n_I} (λ_C/λ̂)^{n_C} (1−ρ)ρ^{n_I+n_C}
    /// ```
    ///
    /// Panics when the model is unstable.
    pub fn joint_occupancy(&self, n_i: u32, n_c: u32) -> f64 {
        assert!(self.is_stable(), "no stationary distribution at rho >= 1");
        let rho = self.rho();
        let q = self.consistent_fraction();
        let n = n_i + n_c;
        let binom = binomial(n, n_i);
        binom * (1.0 - q).powi(n_i as i32) * q.powi(n_c as i32) * (1.0 - rho) * rho.powi(n as i32)
    }

    /// Mean number of live records in the system, `ρ/(1−ρ)` (the marginal
    /// total occupancy is geometric as in M/M/1). Panics when unstable.
    pub fn mean_live_records(&self) -> f64 {
        assert!(self.is_stable(), "unstable");
        let rho = self.rho();
        rho / (1.0 - rho)
    }

    /// The Table 1 state-change probabilities for these parameters.
    pub fn transitions(&self) -> Transitions {
        Transitions::new(self.p_loss, self.p_death)
    }
}

/// Table 1 of the paper: probabilities of class changes as a record
/// leaves the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transitions {
    /// I → I (announcement lost, record survives): `p_c(1−p_d)`.
    pub i_to_i: f64,
    /// I → C (announcement delivered, record survives): `(1−p_c)(1−p_d)`.
    pub i_to_c: f64,
    /// I → death: `p_d`.
    pub i_death: f64,
    /// C → C (record survives): `1−p_d`.
    pub c_to_c: f64,
    /// C → death: `p_d`.
    pub c_death: f64,
}

impl Transitions {
    /// Builds Table 1 from the loss and death probabilities.
    pub fn new(p_loss: f64, p_death: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_loss), "bad p_loss {p_loss}");
        assert!((0.0..=1.0).contains(&p_death), "bad p_death {p_death}");
        Transitions {
            i_to_i: p_loss * (1.0 - p_death),
            i_to_c: (1.0 - p_loss) * (1.0 - p_death),
            i_death: p_death,
            c_to_c: 1.0 - p_death,
            c_death: p_death,
        }
    }

    /// Rows sum to 1 by construction; exposed for sanity checks.
    pub fn row_sums(&self) -> (f64, f64) {
        (
            self.i_to_i + self.i_to_c + self.i_death,
            self.c_to_c + self.c_death,
        )
    }
}

/// Exact binomial coefficient as f64 (stable for the small n used in
/// occupancy sums).
fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig3() -> OpenLoop {
        // λ = 20 kbps, μ_ch = 128 kbps, in packets/s with 1000-byte ADUs.
        OpenLoop::new(20_000.0 / 8_000.0, 128_000.0 / 8_000.0, 0.1, 0.25)
    }

    #[test]
    fn flow_balance_identities() {
        let m = paper_fig3();
        // λ_I + λ_C = λ/p_d must hold identically.
        assert!((m.lambda_i() + m.lambda_c() - m.lambda_hat()).abs() < 1e-9);
        // Flow into I: λ + p_c(1-p_d)·λ_I = λ_I.
        let infl = m.lambda + m.p_loss * (1.0 - m.p_death) * m.lambda_i();
        assert!((infl - m.lambda_i()).abs() < 1e-9);
        // Flow into C: (1-p_c)(1-p_d)·λ_I + (1-p_d)·λ_C = λ_C.
        let infc =
            (1.0 - m.p_loss) * (1.0 - m.p_death) * m.lambda_i() + (1.0 - m.p_death) * m.lambda_c();
        assert!((infc - m.lambda_c()).abs() < 1e-9);
    }

    #[test]
    fn stability_condition_matches_paper() {
        // Valid only when p_d > λ/μ.
        let m = paper_fig3();
        assert_eq!(m.is_stable(), m.p_death > m.lambda / m.mu);
        // λ/μ = 0.15625 > p_d = 0.15 -> unstable.
        let unstable = OpenLoop::new(2.5, 16.0, 0.1, 0.15);
        assert!(unstable.p_death < unstable.lambda / unstable.mu);
        assert!(!unstable.is_stable());
    }

    #[test]
    fn consistent_fraction_limits() {
        // No loss, rare death: almost everything in the table is consistent.
        let m = OpenLoop::new(1.0, 100.0, 0.0, 0.05);
        assert!((m.consistent_fraction() - 0.95).abs() < 1e-12);
        // Total loss: nothing ever becomes consistent.
        let m = OpenLoop::new(1.0, 100.0, 1.0, 0.05);
        assert!(m.consistent_fraction().abs() < 1e-12);
        // Monotone decreasing in loss.
        let mut last = 1.0;
        for i in 0..=10 {
            let m = OpenLoop::new(1.0, 100.0, i as f64 / 10.0, 0.1);
            let q = m.consistent_fraction();
            assert!(q <= last + 1e-12);
            last = q;
        }
    }

    #[test]
    fn paper_text_fig3_claim() {
        // "the system consistency lies between 85% and 95% for loss rates
        // in the 1-10% range and an announcement death rate of 15%" —
        // the busy-conditioned consistency at p_d = 0.15:
        let lo = OpenLoop::new(1.0, 100.0, 0.10, 0.15).consistency_busy();
        let hi = OpenLoop::new(1.0, 100.0, 0.01, 0.15).consistency_busy();
        assert!(lo > 0.80 && hi < 0.95, "range [{lo}, {hi}]");
        assert!(hi > lo);
    }

    #[test]
    fn paper_text_fig4_claim() {
        // "At loss rates between 0-20% and an announcement death rate of
        // 10%, about 90% of the total available bandwidth is wasted."
        for p_loss in [0.0, 0.1, 0.2] {
            let w = OpenLoop::new(1.0, 100.0, p_loss, 0.10).wasted_bandwidth_fraction();
            assert!((0.85..=0.91).contains(&w), "W({p_loss}) = {w}");
        }
    }

    #[test]
    fn joint_occupancy_normalizes_and_marginalizes() {
        let m = OpenLoop::new(1.0, 10.0, 0.2, 0.3); // rho = 1/3
        let mut total = 0.0;
        let mut mean_n = 0.0;
        for n_i in 0..60 {
            for n_c in 0..60 {
                let p = m.joint_occupancy(n_i, n_c);
                total += p;
                mean_n += p * (n_i + n_c) as f64;
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!((mean_n - m.mean_live_records()).abs() < 1e-6);
    }

    #[test]
    fn occupancy_class_split_matches_q() {
        let m = OpenLoop::new(1.0, 10.0, 0.2, 0.3);
        let q = m.consistent_fraction();
        // E[n_C] / E[n_I + n_C] must equal q under the product form.
        let mut mean_c = 0.0;
        let mut mean_n = 0.0;
        for n_i in 0..80 {
            for n_c in 0..80 {
                let p = m.joint_occupancy(n_i, n_c);
                mean_c += p * n_c as f64;
                mean_n += p * (n_i + n_c) as f64;
            }
        }
        assert!((mean_c / mean_n - q).abs() < 1e-6);
    }

    #[test]
    fn unnormalized_vs_conditional() {
        let m = OpenLoop::new(1.0, 10.0, 0.2, 0.3);
        // E_unnorm = q * rho; conditional = q; empty-as-consistent in
        // between conditional and 1.
        assert!((m.consistency_unnormalized() - m.consistency_busy() * m.rho()).abs() < 1e-12);
        let e = m.consistency_empty_is_consistent();
        assert!(e > m.consistency_busy() && e < 1.0);
    }

    #[test]
    fn saturation_clips() {
        let m = OpenLoop::new(10.0, 10.0, 0.1, 0.2); // rho = 5
        assert!(!m.is_stable());
        assert!((m.consistency_unnormalized() - m.consistent_fraction()).abs() < 1e-12);
    }

    #[test]
    fn table1_rows_sum_to_one() {
        for p_c in [0.0, 0.3, 1.0] {
            for p_d in [0.0, 0.5, 1.0] {
                let t = Transitions::new(p_c, p_d);
                let (r1, r2) = t.row_sums();
                assert!((r1 - 1.0).abs() < 1e-12);
                assert!((r2 - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn table1_values() {
        let t = Transitions::new(0.2, 0.1);
        assert!((t.i_to_i - 0.18).abs() < 1e-12);
        assert!((t.i_to_c - 0.72).abs() < 1e-12);
        assert!((t.i_death - 0.1).abs() < 1e-12);
        assert!((t.c_to_c - 0.9).abs() < 1e-12);
        assert!((t.c_death - 0.1).abs() < 1e-12);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(2, 5), 0.0);
        assert_eq!(binomial(10, 3), 120.0);
    }

    #[test]
    #[should_panic(expected = "p_death must be in")]
    fn zero_death_rejected() {
        // p_d = 0 means records live forever: λ̂ diverges.
        let _ = OpenLoop::new(1.0, 10.0, 0.1, 0.0);
    }
}
