//! Convergence-time analysis for announce/listen over a static store.
//!
//! §2.1 defines *eventual consistency* (`c(k) → 1`) but the paper never
//! quantifies how long "eventually" takes. For the canonical catch-up
//! scenario — a late joiner or crashed receiver recovering a static
//! table of `n` records from round-robin announcements at rate `μ` over
//! a channel with loss `p` — the time is a max-of-geometrics problem:
//!
//! * Each record needs `G_i ~ Geometric(1−p)` announcement cycles (the
//!   cycle in which its copy first survives the channel).
//! * Full synchronization takes `max_i G_i` cycles of length `n/μ` each.
//! * By inclusion–exclusion,
//!   `E[max G] = Σ_{k≥0} (1 − (1−p^k)^n)` — the coupon-collector-like
//!   sum implemented here.
//!
//! These forms are validated against the open-loop simulation's bulk
//! workload (every record immortal, measure the last first-delivery).

/// Expected number of announcement *cycles* until all `n` records of a
/// static store have been received at least once, with per-announcement
/// loss `p`. (`E[max of n iid Geometric(1−p)]`, support starting at 1.)
pub fn expected_cycles_to_sync(n: u64, p_loss: f64) -> f64 {
    assert!(n > 0, "empty store");
    assert!(
        (0.0..1.0).contains(&p_loss),
        "loss {p_loss} must be in [0,1)"
    );
    if p_loss == 0.0 {
        return 1.0;
    }
    // E[max] = sum_{k>=0} P[max > k] = sum_{k>=0} 1 - (1 - p^k)^n.
    let mut total = 0.0;
    let mut p_k: f64 = 1.0; // p^0
    loop {
        let term = 1.0 - (1.0 - p_k).powf(n as f64);
        total += term;
        if term < 1e-12 {
            break;
        }
        p_k *= p_loss;
    }
    total
}

/// Expected time (seconds) for a late joiner to fully synchronize a
/// static store of `n` records announced round-robin at `mu` records/s
/// with loss `p`. One cycle takes `n/mu` seconds; the joiner needs
/// [`expected_cycles_to_sync`] cycles. (First-order: ignores sub-cycle
/// position effects, which contribute at most one cycle.)
pub fn expected_sync_time(n: u64, mu: f64, p_loss: f64) -> f64 {
    assert!(mu > 0.0, "rate must be positive");
    expected_cycles_to_sync(n, p_loss) * n as f64 / mu
}

/// The probability the store is fully synchronized within `cycles`
/// announcement cycles: `(1 − p^cycles)^n`.
pub fn sync_probability(n: u64, p_loss: f64, cycles: u32) -> f64 {
    assert!(n > 0, "empty store");
    assert!((0.0..1.0).contains(&p_loss), "loss {p_loss}");
    (1.0 - p_loss.powi(cycles as i32)).powf(n as f64)
}

/// The number of cycles needed to be synchronized with probability at
/// least `target` — the provisioning question ("how long must a joiner
/// listen to be 99% caught up?").
pub fn cycles_for_probability(n: u64, p_loss: f64, target: f64) -> u32 {
    assert!((0.0..1.0).contains(&target), "target {target}");
    if p_loss == 0.0 {
        return 1;
    }
    // Solve (1 - p^k)^n >= target  =>  p^k <= 1 - target^(1/n).
    let bound = 1.0 - target.powf(1.0 / n as f64);
    if bound <= 0.0 {
        return u32::MAX;
    }
    let k = bound.ln() / p_loss.ln();
    (k.ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_takes_one_cycle() {
        assert_eq!(expected_cycles_to_sync(100, 0.0), 1.0);
        assert_eq!(cycles_for_probability(100, 0.0, 0.99), 1);
        assert_eq!(sync_probability(100, 0.0, 1), 1.0);
    }

    #[test]
    fn single_record_is_plain_geometric() {
        // E[Geometric(1-p)] = 1/(1-p).
        for p in [0.1, 0.5, 0.9] {
            let e = expected_cycles_to_sync(1, p);
            let want = 1.0 / (1.0 - p);
            assert!((e - want).abs() < 1e-9, "p={p}: {e} vs {want}");
        }
    }

    #[test]
    fn grows_logarithmically_with_store_size() {
        // E[max of n geometrics] ~ log_{1/p}(n); doubling n adds about
        // log_{1/p}(2) cycles.
        let p: f64 = 0.5;
        let e1 = expected_cycles_to_sync(64, p);
        let e2 = expected_cycles_to_sync(128, p);
        let increment = e2 - e1;
        let want = 2.0f64.ln() / (1.0 / p).ln(); // = 1 for p = 0.5
        assert!(
            (increment - want).abs() < 0.1,
            "increment {increment} vs {want}"
        );
    }

    #[test]
    fn monotone_in_loss_and_size() {
        let mut last = 0.0;
        for p in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let e = expected_cycles_to_sync(32, p);
            assert!(e >= last);
            last = e;
        }
        let mut last = 0.0;
        for n in [1, 4, 16, 64, 256] {
            let e = expected_cycles_to_sync(n, 0.3);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn sync_probability_matches_expectation_shape() {
        let (n, p) = (50u64, 0.3);
        // The expected max sits where the CDF transitions; the sync
        // probability at ceil(E) cycles should be substantial and at
        // E/2 cycles small.
        let e = expected_cycles_to_sync(n, p);
        let at_e = sync_probability(n, p, e.ceil() as u32);
        let at_half = sync_probability(n, p, (e / 2.0).floor().max(1.0) as u32);
        assert!(at_e > 0.4, "P[synced at E[max]] = {at_e}");
        assert!(at_half < at_e, "{at_half} < {at_e}");
    }

    #[test]
    fn cycles_for_probability_is_sufficient() {
        for (n, p, target) in [(10u64, 0.2, 0.9), (200, 0.5, 0.99), (5, 0.8, 0.95)] {
            let k = cycles_for_probability(n, p, target);
            assert!(
                sync_probability(n, p, k) >= target,
                "k={k} insufficient for (n={n}, p={p}, target={target})"
            );
            if k > 1 {
                assert!(
                    sync_probability(n, p, k - 1) < target,
                    "k={k} not minimal for (n={n}, p={p}, target={target})"
                );
            }
        }
    }

    #[test]
    fn sync_time_scales_with_cycle_length() {
        // 100 records at 10/s = 10 s cycles; at 30% loss ~4.3 cycles.
        let t = expected_sync_time(100, 10.0, 0.3);
        let cycles = expected_cycles_to_sync(100, 0.3);
        assert!((t - cycles * 10.0).abs() < 1e-9);
        assert!(t > 10.0 && t < 120.0, "t = {t}");
    }
}
