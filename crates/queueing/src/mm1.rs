//! M/M/1 queue formulas.
//!
//! The paper leans on two M/M/1 facts: the product-form occupancy
//! distribution behind the §3 consistency derivation, and the sojourn
//! time `E[T] = 1/(μ − λ)` that explains the ≈300 ms receive latency
//! observed in Figure 6 when cold-queue bandwidth is near zero
//! ("approximating the system as a single-server single-queue system").
//!
//! Rates are unit-agnostic: any consistent pair (packets/s, jobs/s, ...)
//! works, since only ratios and differences enter the formulas.

/// A stationary M/M/1 queue with Poisson arrivals at `lambda` and
/// exponential service at `mu` (same units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mm1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
}

impl Mm1 {
    /// Builds the queue; requires positive finite rates.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "bad lambda {lambda}");
        assert!(mu > 0.0 && mu.is_finite(), "bad mu {mu}");
        Mm1 { lambda, mu }
    }

    /// Utilization `ρ = λ/μ`.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// True when the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Stationary probability of exactly `n` jobs: `(1−ρ)ρⁿ`.
    /// Panics when unstable (no stationary distribution exists).
    pub fn p_n(&self, n: u32) -> f64 {
        assert!(self.is_stable(), "no stationary distribution at rho >= 1");
        let rho = self.rho();
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// Mean number in system `E[N] = ρ/(1−ρ)`. Panics when unstable.
    pub fn mean_jobs(&self) -> f64 {
        assert!(self.is_stable(), "unstable queue");
        let rho = self.rho();
        rho / (1.0 - rho)
    }

    /// Mean sojourn time `E[T] = 1/(μ−λ)` — the latency anchor the paper
    /// uses for Figure 6. Panics when unstable.
    pub fn mean_sojourn(&self) -> f64 {
        assert!(self.is_stable(), "unstable queue");
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time (excluding service) `E[W] = ρ/(μ−λ)`.
    pub fn mean_wait(&self) -> f64 {
        assert!(self.is_stable(), "unstable queue");
        self.rho() / (self.mu - self.lambda)
    }

    /// Probability the system is empty, `1 − ρ`.
    pub fn p_empty(&self) -> f64 {
        assert!(self.is_stable(), "unstable queue");
        1.0 - self.rho()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let q = Mm1::new(2.0, 5.0);
        assert!((q.rho() - 0.4).abs() < 1e-12);
        assert!(q.is_stable());
        assert!((q.mean_jobs() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_sojourn() - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_wait() - 0.4 / 3.0).abs() < 1e-12);
        assert!((q.p_empty() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn little_law_consistency() {
        // E[N] = λ E[T] must hold identically.
        for (l, m) in [(1.0, 3.0), (0.5, 0.9), (7.0, 8.0)] {
            let q = Mm1::new(l, m);
            assert!((q.mean_jobs() - l * q.mean_sojourn()).abs() < 1e-9);
        }
    }

    #[test]
    fn occupancy_sums_to_one() {
        let q = Mm1::new(3.0, 4.0);
        let total: f64 = (0..500).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_anchor_300ms() {
        // μ_data = 45 kbps, λ = 15 kbps, 1000-byte ADUs:
        // μ = 5.625 pkt/s, λ = 1.875 pkt/s, E[T] = 1/3.75 ≈ 267 ms —
        // the paper reports "the 300 ms latency".
        let q = Mm1::new(15_000.0 / 8_000.0, 45_000.0 / 8_000.0);
        let t = q.mean_sojourn();
        assert!((t - 0.2667).abs() < 0.001, "E[T] = {t}");
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_panics() {
        let _ = Mm1::new(5.0, 4.0).mean_jobs();
    }
}
