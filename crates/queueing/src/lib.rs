//! # ss-queueing — closed-form analysis of open-loop announce/listen
//!
//! §3 of the paper models the open-loop soft-state channel as a single
//! FIFO server with two job classes (*consistent* / *inconsistent*) and
//! closes it with Jackson's theorem. This crate implements every formula
//! in that section:
//!
//! * [`openloop::OpenLoop`] — class throughputs `λ_I`, `λ_C`, utilization,
//!   the stability condition `p_d > λ/μ`, the consistency closed forms
//!   behind Figure 3, the wasted-bandwidth fraction behind Figure 4, and
//!   the joint occupancy distribution.
//! * [`openloop::Transitions`] — Table 1's state-change probabilities.
//! * [`mm1::Mm1`] — the M/M/1 facts used for the Figure 6 latency anchor.
//! * [`sync_time`] — convergence-time analysis: how long "eventual"
//!   consistency takes for a late joiner recovering a static store
//!   (max-of-geometrics closed forms, validated against simulation).
//!
//! The formulas are validated against discrete-event simulation in the
//! `softstate` crate's tests and in the `validate-analysis` experiment.

pub mod mm1;
pub mod openloop;
pub mod sync_time;

pub use mm1::Mm1;
pub use openloop::{OpenLoop, Transitions};
pub use sync_time::{cycles_for_probability, expected_cycles_to_sync, expected_sync_time};
