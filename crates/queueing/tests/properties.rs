//! Property-based tests of the §3 closed-form identities over random
//! parameters.

use proptest::prelude::*;
use ss_queueing::{Mm1, OpenLoop, Transitions};

proptest! {
    /// Flow-balance identities hold for every valid parameterization.
    #[test]
    fn flow_balance(
        lambda in 0.01f64..10.0,
        mu in 0.1f64..100.0,
        p_loss in 0.0f64..1.0,
        p_death in 0.01f64..1.0,
    ) {
        let m = OpenLoop::new(lambda, mu, p_loss, p_death);
        // lambda_I + lambda_C = lambda / p_d.
        prop_assert!((m.lambda_i() + m.lambda_c() - m.lambda_hat()).abs() < 1e-9);
        // Balance into I: lambda + p_c(1-p_d) lambda_I = lambda_I.
        let infl = lambda + p_loss * (1.0 - p_death) * m.lambda_i();
        prop_assert!((infl - m.lambda_i()).abs() < 1e-9);
        // q = lambda_C / lambda_hat.
        let q = m.lambda_c() / m.lambda_hat();
        prop_assert!((q - m.consistent_fraction()).abs() < 1e-9);
    }

    /// All probability-like outputs stay in `[0, 1]` and respect ordering:
    /// unnormalized <= busy <= empty-consistent convention relations.
    #[test]
    fn outputs_are_probabilities(
        lambda in 0.01f64..10.0,
        mu in 0.1f64..100.0,
        p_loss in 0.0f64..1.0,
        p_death in 0.01f64..1.0,
    ) {
        let m = OpenLoop::new(lambda, mu, p_loss, p_death);
        for v in [
            m.consistent_fraction(),
            m.consistency_unnormalized(),
            m.consistency_busy(),
            m.consistency_empty_is_consistent(),
            m.wasted_bandwidth_fraction(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        prop_assert!(m.consistency_unnormalized() <= m.consistency_busy() + 1e-12);
        prop_assert!(m.consistency_busy() <= m.consistency_empty_is_consistent() + 1e-12);
    }

    /// Consistency is monotone: nonincreasing in loss and in death rate.
    #[test]
    fn monotonicity(
        p_loss in 0.0f64..0.95,
        p_death in 0.02f64..0.95,
        d_loss in 0.001f64..0.05,
        d_death in 0.001f64..0.05,
    ) {
        let base = OpenLoop::new(1.0, 100.0, p_loss, p_death);
        let worse_loss = OpenLoop::new(1.0, 100.0, p_loss + d_loss, p_death);
        let worse_death = OpenLoop::new(1.0, 100.0, p_loss, p_death + d_death);
        prop_assert!(worse_loss.consistency_busy() <= base.consistency_busy() + 1e-12);
        prop_assert!(worse_death.consistency_busy() <= base.consistency_busy() + 1e-12);
    }

    /// The joint occupancy distribution is a distribution: nonnegative and
    /// summing to ~1 (for stable parameters).
    #[test]
    fn occupancy_normalizes(
        p_loss in 0.0f64..0.9,
        p_death in 0.3f64..0.9,
        lambda in 0.1f64..2.0,
    ) {
        let m = OpenLoop::new(lambda, 10.0, p_loss, p_death);
        prop_assume!(m.is_stable() && m.rho() < 0.8);
        let mut total = 0.0;
        for ni in 0..60u32 {
            for nc in 0..60u32 {
                let p = m.joint_occupancy(ni, nc);
                prop_assert!(p >= 0.0);
                total += p;
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    /// Table 1 rows always sum to 1.
    #[test]
    fn transitions_are_stochastic(p_loss in 0.0f64..1.0, p_death in 0.0f64..1.0) {
        let t = Transitions::new(p_loss, p_death);
        let (r1, r2) = t.row_sums();
        prop_assert!((r1 - 1.0).abs() < 1e-12);
        prop_assert!((r2 - 1.0).abs() < 1e-12);
        for v in [t.i_to_i, t.i_to_c, t.i_death, t.c_to_c, t.c_death] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Little's law holds identically for stable M/M/1 queues.
    #[test]
    fn mm1_littles_law(lambda in 0.01f64..5.0, extra in 0.05f64..10.0) {
        let q = Mm1::new(lambda, lambda + extra);
        prop_assert!(q.is_stable());
        prop_assert!((q.mean_jobs() - lambda * q.mean_sojourn()).abs() < 1e-9);
        prop_assert!((q.mean_sojourn() - q.mean_wait() - 1.0 / (lambda + extra)).abs() < 1e-9);
        // Occupancy distribution normalizes.
        let total: f64 = (0..2_000).map(|n| q.p_n(n)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }
}
