//! Root package: hosts the workspace-spanning integration tests (`tests/`)
//! and the runnable examples (`examples/`). Re-exports the workspace crates
//! for convenience.

pub use softstate;
pub use ss_netsim as netsim;
pub use ss_queueing as queueing;
pub use ss_sched as sched;
pub use sstp;
