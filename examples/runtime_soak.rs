//! Multi-session runtime soak over real loopback sockets, exporting the
//! runtime's health metrics as an ss-metrics JSONL artifact.
//!
//! Two [`Runtime`]s — a publisher node and a subscriber node — carry
//! `SESSIONS` concurrent SSTP sessions over one UDP socket each. Mid-run
//! a fault schedule (a partition followed by 25% extra loss) is replayed
//! as real socket-level drops at both ingresses, a tenth of the
//! subscriber sessions crash and rejoin, and the run then measures the
//! time back to full convergence.
//!
//! ```text
//! cargo run --release --example runtime_soak
//! ```
//!
//! Writes `results/metrics/runtime_soak.jsonl` (gitignored: probe and
//! drop counts depend on wall-clock scheduling, so the artifact is not
//! byte-reproducible like the simulator's).

use ss_netsim::{
    FaultSpec, LossSpec, RealPathFaults, SimDuration, SimRng, SimTime, ARTIFACT_SCHEMA_VERSION,
};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::ReceiverConfig;
use sstp::runtime::{Runtime, RuntimeConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SESSIONS: usize = 100;
const TTL: SimDuration = SimDuration::from_secs(5);

fn any_loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn receiver_config(id: u32) -> ReceiverConfig {
    let mut cfg = ReceiverConfig::unicast(id, HashAlgorithm::Fnv64);
    cfg.ttl = TTL;
    cfg.repair_backoff = SimDuration::from_millis(100);
    cfg
}

fn drive(pub_rt: &mut Runtime, sub_rt: &mut Runtime, wall: Duration) -> std::io::Result<()> {
    let sub_sock = sub_rt.try_clone_socket()?;
    let end = Instant::now() + wall;
    while Instant::now() < end {
        pub_rt.poll()?;
        sub_rt.poll()?;
        sstp::runtime::wait::wait_for_datagram(&sub_sock, Duration::from_millis(2))?;
    }
    Ok(())
}

fn diverged(pub_rt: &Runtime, sub_rt: &Runtime, n: usize) -> u64 {
    let mut bad = 0u64;
    for sid in 0..n as u32 {
        let tx = pub_rt.publisher(sid).expect("publisher session");
        let Some(rx) = sub_rt.subscriber(sid) else {
            continue;
        };
        for rec in tx.table().live() {
            match rx.replica().get(rec.key) {
                Some(e) if e.value.version == rec.value.version => {}
                _ => bad += 1,
            }
        }
    }
    bad
}

fn main() -> std::io::Result<()> {
    let placeholder = any_loopback();
    let mut pub_cfg = RuntimeConfig::loopback(any_loopback(), placeholder);
    pub_cfg.seed = 7;
    let mut pub_rt = Runtime::bind(pub_cfg)?;
    let mut sub_cfg = RuntimeConfig::loopback(any_loopback(), pub_rt.local_addr()?);
    sub_cfg.seed = 8;
    let mut sub_rt = Runtime::bind(sub_cfg)?;
    pub_rt.set_peer(sub_rt.local_addr()?);

    for i in 0..SESSIONS {
        pub_rt.add_publisher(HashAlgorithm::Fnv64, 64);
        sub_rt.add_subscriber(receiver_config(i as u32));
    }
    let mut first_keys = Vec::with_capacity(SESSIONS);
    for sid in 0..SESSIONS as u32 {
        let now = pub_rt.now();
        let tx = pub_rt.publisher_mut(sid).unwrap();
        let root = tx.root();
        first_keys.push(tx.publish(now, root, MetaTag(0)));
        tx.publish(now, root, MetaTag(1));
        tx.publish(now, root, MetaTag(2));
    }
    println!(
        "{SESSIONS} sessions x 3 records over {} <-> {}",
        pub_rt.local_addr()?,
        sub_rt.local_addr()?
    );

    let t0 = Instant::now();
    while diverged(&pub_rt, &sub_rt, SESSIONS) > 0 {
        drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(100))?;
    }
    println!("initial convergence in {:?}", t0.elapsed());

    // Replay a fault schedule as real socket drops: 1 s partition, then
    // 1 s of 25% extra loss, with churn and updates inside the window.
    let fault_spec = |now: SimTime| {
        FaultSpec::none()
            .partition(
                now + SimDuration::from_millis(200),
                now + SimDuration::from_millis(1200),
            )
            .extra_loss(
                now + SimDuration::from_millis(1200),
                now + SimDuration::from_millis(2200),
                LossSpec::Bernoulli(0.25),
            )
    };
    pub_rt.set_faults(RealPathFaults::new(
        fault_spec(pub_rt.now()).build(SimRng::new(0x0f01)),
    ));
    let sub_schedule = fault_spec(sub_rt.now()).build(SimRng::new(0x0f02));
    let healed_at = sub_schedule.healed_at();
    sub_rt.set_faults(RealPathFaults::new(sub_schedule));
    for (i, &k) in first_keys.iter().enumerate() {
        pub_rt.publisher_mut(i as u32).unwrap().update(k);
    }
    let churned: Vec<u32> = (0..SESSIONS as u32).step_by(10).collect();
    for &sid in &churned {
        sub_rt.crash(sid);
    }
    println!(
        "fault window open: partition + extra loss, {} sessions crashed",
        churned.len()
    );
    drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(1400))?;
    for &sid in &churned {
        sub_rt.rejoin_subscriber(sid, receiver_config(sid + 1_000_000));
    }
    drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(1100))?;

    let t1 = Instant::now();
    while diverged(&pub_rt, &sub_rt, SESSIONS) > 0 {
        drive(&mut pub_rt, &mut sub_rt, Duration::from_millis(100))?;
    }
    let mttr = sub_rt.now().saturating_since(healed_at);
    println!(
        "reconverged {:?} after the wall probe, MTTR {:.2}s (gate: 3xTTL = {:.0}s)",
        t1.elapsed(),
        mttr.as_secs_f64(),
        TTL.as_secs_f64() * 3.0
    );
    let drops: u64 = [pub_rt.faults().unwrap(), sub_rt.faults().unwrap()]
        .iter()
        .map(|f| f.data_drops() + f.feedback_drops())
        .sum();
    println!(
        "fault drops {drops}, backpressure drops {}, inbox high-water {}, outbox high-water {}",
        sub_rt.backpressure_drops(),
        sub_rt.inbox_high_water().max(pub_rt.inbox_high_water()),
        sub_rt.outbox_high_water().max(pub_rt.outbox_high_water()),
    );

    let mut jsonl = String::new();
    pub_rt
        .metrics_snapshot()
        .write_jsonl_labeled("publisher", &mut jsonl);
    sub_rt
        .metrics_snapshot()
        .write_jsonl_labeled("subscriber", &mut jsonl);
    let payload = format!(
        "{{\"schema_version\":{ARTIFACT_SCHEMA_VERSION},\"artifact\":\"metrics\",\
         \"name\":\"runtime_soak\"}}\n{jsonl}"
    );
    let dir = std::path::Path::new("results/metrics");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("runtime_soak.jsonl");
    std::fs::write(&path, payload)?;
    println!("wrote {}", path.display());
    Ok(())
}
