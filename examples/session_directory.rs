//! A session-directory (SAP/sdr-style) scenario — the workload the paper
//! repeatedly cites: "it has been successfully used in the multicast-
//! based session directory tools to disseminate MBone conference
//! information to large groups."
//!
//! Conference announcements are published into a namespace organized by
//! category; a *late joiner* tunes in after the fact and catches up
//! purely from the periodic root summary plus recursive-descent repair —
//! no connection setup, no sender state about the receiver.
//!
//! ```text
//! cargo run --example session_directory
//! ```

use softstate::measure_tables;
use ss_netsim::{Bernoulli, LossModel, SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::{ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;
use sstp::wire::Packet;

/// Delivers a packet through 30% loss.
fn lossy_deliver(
    rx: &mut SstpReceiver,
    now: SimTime,
    pkt: &Packet,
    loss: &mut Bernoulli,
    rng: &mut SimRng,
) -> bool {
    if loss.is_lost(rng) {
        false
    } else {
        rx.on_packet(now, pkt);
        true
    }
}

fn main() {
    let mut rng = SimRng::new(7);
    let mut loss = Bernoulli::new(0.3);

    // The directory announcer.
    let mut sdr = SstpSender::new(HashAlgorithm::Fnv64, 400);
    let root = sdr.root();
    let audio = sdr.add_branch(root, MetaTag(1));
    let video = sdr.add_branch(root, MetaTag(2));
    let text = sdr.add_branch(root, MetaTag(3));

    // Announce 30 conferences across the categories.
    let mut now = SimTime::ZERO;
    for i in 0..30u32 {
        let branch = match i % 3 {
            0 => audio,
            1 => video,
            _ => text,
        };
        sdr.publish(now, branch, MetaTag(i % 3 + 1));
    }
    println!(
        "directory holds {} conference entries",
        sdr.table().live_count()
    );

    // A receiver listening from the start, over 30% loss.
    let mut early = SstpReceiver::new(
        ReceiverConfig::unicast(0, HashAlgorithm::Fnv64),
        SimRng::new(1),
    );
    while let Some(pkt) = sdr.next_hot_packet() {
        lossy_deliver(&mut early, now, &pkt, &mut loss, &mut rng);
    }
    let c0 = measure_tables(sdr.table(), early.replica()).unwrap();
    println!(
        "early receiver after the initial announcements: {:.0}% consistent",
        c0 * 100.0
    );

    // A late joiner arrives two minutes in, knowing nothing.
    now = SimTime::from_secs(120);
    let mut late = SstpReceiver::new(
        ReceiverConfig::unicast(1, HashAlgorithm::Fnv64),
        SimRng::new(2),
    );

    // Both receivers participate in summary rounds; the announce/listen
    // process repairs the early receiver and bootstraps the late one.
    let mut rounds = 0;
    loop {
        rounds += 1;
        now += SimDuration::from_secs(5);
        let summary = sdr.summary_packet();
        for r in [&mut early, &mut late] {
            lossy_deliver(r, now, &summary, &mut loss, &mut rng);
        }
        for r in [&mut early, &mut late] {
            for fb in r.poll_feedback(now) {
                sdr.on_packet(&fb);
            }
        }
        while let Some(pkt) = sdr.next_hot_packet() {
            for r in [&mut early, &mut late] {
                lossy_deliver(r, now, &pkt, &mut loss, &mut rng);
            }
        }
        let ce = measure_tables(sdr.table(), early.replica()).unwrap();
        let cl = measure_tables(sdr.table(), late.replica()).unwrap();
        println!(
            "round {rounds:2}: early {:5.1}%  late joiner {:5.1}%",
            ce * 100.0,
            cl * 100.0
        );
        if ce == 1.0 && cl == 1.0 {
            break;
        }
        assert!(rounds < 60, "directory failed to converge");
    }
    println!("\nboth receivers fully consistent after {rounds} summary rounds at 30% loss");

    // A conference ends: the entry is withdrawn, and the next summary
    // round propagates the tombstone.
    let gone = sdr.table().live().next().unwrap().key;
    sdr.withdraw(gone);
    for _ in 0..20 {
        now += SimDuration::from_secs(5);
        let summary = sdr.summary_packet();
        for r in [&mut early, &mut late] {
            lossy_deliver(r, now, &summary, &mut loss, &mut rng);
            for fb in r.poll_feedback(now) {
                sdr.on_packet(&fb);
            }
        }
        while let Some(pkt) = sdr.next_hot_packet() {
            for r in [&mut early, &mut late] {
                lossy_deliver(r, now, &pkt, &mut loss, &mut rng);
            }
        }
        if early.replica().get(gone).is_none() && late.replica().get(gone).is_none() {
            println!("withdrawn conference purged from both replicas");
            return;
        }
    }
    panic!("withdrawal failed to propagate");
}
