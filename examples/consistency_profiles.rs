//! Consistency profiles from the closed forms — what the §6.1 allocator
//! consults. Prints the Figure 3/4 analytic curves and, for a set of
//! measured loss rates, the bandwidth split the profile-driven allocator
//! recommends for the paper's 45 kbps session.
//!
//! ```text
//! cargo run --example consistency_profiles
//! ```

use ss_netsim::Bandwidth;
use ss_queueing::OpenLoop;
use sstp::allocator::{Allocator, AllocatorConfig};
use sstp::reliability::ReliabilityLevel;

fn main() {
    // Figure 3/4 closed forms: lambda = 20 kbps, mu = 128 kbps (pkt/s with
    // 1000-byte ADUs).
    let (lambda, mu) = (2.5, 16.0);
    println!("open-loop closed forms (lambda = 20 kbps, mu_ch = 128 kbps):\n");
    println!(
        "{:>5}  {:>9} {:>9} {:>9}  {:>8}",
        "loss", "pd=0.10", "pd=0.25", "pd=0.50", "waste@.1"
    );
    for i in 0..=9 {
        let p_loss = i as f64 * 0.1;
        let c = |pd: f64| OpenLoop::new(lambda, mu, p_loss, pd).consistency_unnormalized();
        let w = OpenLoop::new(lambda, mu, p_loss, 0.10).wasted_bandwidth_fraction();
        println!(
            "{:>4.0}%  {:>9.4} {:>9.4} {:>9.4}  {:>8.4}",
            p_loss * 100.0,
            c(0.10),
            c(0.25),
            c(0.50),
            w
        );
    }

    // The allocator's recommendations as measured loss climbs.
    println!("\nprofile-driven allocation for a 45 kbps session (lambda = 1.875 rec/s):\n");
    let allocator = Allocator::new(AllocatorConfig {
        reliability: ReliabilityLevel::Quasi { max_fb_share: 0.5 }.into(),
        ..AllocatorConfig::default()
    });
    let total = Bandwidth::from_kbps(45);
    println!(
        "{:>5}  {:>12} {:>12} {:>12}  {:>10} {:>9}",
        "loss", "hot", "cold", "feedback", "predicted", "max rate"
    );
    for i in 0..=10 {
        let loss = i as f64 * 0.05;
        let a = allocator.allocate(total, loss, 1.875);
        println!(
            "{:>4.0}%  {:>12} {:>12} {:>12}  {:>9.1}% {:>7.2}/s",
            loss * 100.0,
            a.hot.to_string(),
            a.cold.to_string(),
            a.feedback.to_string(),
            a.predicted_consistency * 100.0,
            a.max_sustainable_rate
        );
    }
    println!(
        "\nthe allocator shifts budget toward feedback as loss grows, while \
         keeping mu_hot above lambda (the Figure 5/10 knee)"
    );
}
