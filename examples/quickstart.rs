//! Quickstart: publish a soft-state table over a lossy channel and watch
//! the subscriber converge.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::SimDuration;
use sstp::session::{self, SessionConfig, SessionWorkload};

fn main() {
    // A unicast SSTP session: 45 kbps budget, 20% packet loss both ways,
    // records arriving at ~1.9/s with two-minute lifetimes.
    let mut cfg = SessionConfig::unicast_default(42);
    cfg.data_loss = LossSpec::Bernoulli(0.2);
    cfg.fb_loss = LossSpec::Bernoulli(0.2);
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::Poisson { rate: 1.875 },
        mean_lifetime_secs: Some(120.0),
        branches: 4,
        class_weights: None,
    };
    cfg.duration = SimDuration::from_secs(600);

    println!("running a 600-simulated-second SSTP session at 20% loss...");
    let report = session::run(&cfg);
    let rx = &report.receivers[0];

    println!();
    println!(
        "consistency (time-averaged):   {:.1}%",
        report.mean_consistency() * 100.0
    );
    println!(
        "receive latency (mean / p90):  {:.0} ms / {:.0} ms",
        rx.latency.mean().as_secs_f64() * 1000.0,
        rx.latency.quantile(0.9).as_secs_f64() * 1000.0
    );
    println!(
        "loss estimate at the sender:   {:.1}% (true: 20%)",
        report.final_loss_estimate * 100.0
    );
    println!(
        "data channel:                  {} packets, {} KB",
        report.packets.data_channel_tx,
        report.packets.data_bytes / 1000
    );
    println!(
        "feedback channel:              {} packets ({} NACKed keys, {} repair queries)",
        report.packets.feedback_tx, rx.stats.nacked_keys, rx.stats.queries_sent
    );
    if let Some((_, alloc)) = report.allocations.last() {
        println!(
            "final allocation:              hot {} | cold {} | feedback {}",
            alloc.hot, alloc.cold, alloc.feedback
        );
    }

    assert!(
        report.mean_consistency() > 0.7,
        "session failed to converge"
    );
    println!("\nok: the subscriber tracked the publisher through 20% loss.");
}
