//! A stock-ticker / information-dissemination workload — the paper's
//! PointCast-style motivation ("stock quote or general information
//! dissemination services"): a fixed universe of symbols whose values
//! update continuously, where *freshness* matters more than per-update
//! delivery.
//!
//! The same workload runs at three points on SSTP's reliability
//! continuum, showing the consistency/overhead trade each level buys.
//!
//! ```text
//! cargo run --example stock_ticker
//! ```

use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::SimDuration;
use sstp::reliability::ReliabilityLevel;
use sstp::session::{self, SessionConfig, SessionWorkload};

fn run_level(level: ReliabilityLevel, label: &str) {
    let mut cfg = SessionConfig::unicast_default(2024);
    cfg.allocator.reliability = level.into();
    cfg.data_loss = LossSpec::Bernoulli(0.25);
    cfg.fb_loss = LossSpec::Bernoulli(0.25);
    // 40 symbols updated ~4 times per second in aggregate.
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::PoissonUpdates {
            rate: 4.0,
            keys: 40,
        },
        mean_lifetime_secs: None,
        branches: 4,
        class_weights: None,
    };
    cfg.adu_bytes = 250; // quotes are small
    cfg.allocator.adu_bytes = 250;
    cfg.total_bandwidth = ss_netsim::Bandwidth::from_kbps(24);
    cfg.ttl = SimDuration::from_secs(60);
    cfg.duration = SimDuration::from_secs(400);

    let report = session::run(&cfg);
    let rx = &report.receivers[0];
    println!(
        "{label:<16} {:>10.1}% {:>11} {:>10} {:>10}",
        report.mean_consistency() * 100.0,
        report.packets.data_channel_tx,
        report.packets.feedback_tx,
        rx.stats.nacked_keys,
    );
}

fn main() {
    println!("stock ticker: 40 symbols, 4 updates/s, 25% loss, 24 kbps budget\n");
    println!(
        "{:<16} {:>11} {:>11} {:>10} {:>10}",
        "level", "consistency", "data pkts", "fb pkts", "repairs"
    );
    run_level(ReliabilityLevel::BestEffort, "best-effort");
    run_level(ReliabilityLevel::AnnounceListen, "announce/listen");
    run_level(
        ReliabilityLevel::Quasi { max_fb_share: 0.3 },
        "quasi-reliable",
    );
    run_level(ReliabilityLevel::Reliable, "reliable");
    println!(
        "\nthe reliability dial trades feedback traffic for freshness; note the\n\
         'reliable' level over-spends feedback at this tight budget (the\n\
         Figure 8 collapse) — quasi-reliable sits at the knee"
    );
}
