//! Route advertisements as soft state — the paper's other recurring
//! motivation ("several protocols have inherently 'soft' or periodically
//! changing data, e.g., route advertisements").
//!
//! A RIP-flavored scenario: a router advertises a table of routes whose
//! metrics change over time. We then *crash the announcer* and watch the
//! listener's soft-state timers expire every route — Clark's
//! "survivability in the face of failure": no teardown protocol ran, yet
//! the stale state vanished by itself. When the router comes back, the
//! normal announce/listen process rebuilds the table without any special
//! recovery path.
//!
//! ```text
//! cargo run --example routing_updates
//! ```

use softstate::{measure_tables, Key};
use ss_netsim::{Bernoulli, LossModel, SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::{ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;

const ROUTES: usize = 24;
const TTL_SECS: u64 = 30;

fn main() {
    let mut rng = SimRng::new(11);
    let mut loss = Bernoulli::new(0.1);

    let mut router = SstpSender::new(HashAlgorithm::Fnv64, 64);
    let root = router.root();
    let routes: Vec<Key> = (0..ROUTES)
        .map(|_| router.publish(SimTime::ZERO, root, MetaTag(0)))
        .collect();

    let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
    cfg.ttl = SimDuration::from_secs(TTL_SECS);
    let mut listener = SstpReceiver::new(cfg, SimRng::new(3));

    // Helper: one announce/listen round at time `now`.
    let round = |router: &mut SstpSender,
                 listener: &mut SstpReceiver,
                 now: SimTime,
                 rng: &mut SimRng,
                 loss: &mut Bernoulli| {
        listener.expire(now);
        let summary = router.summary_packet();
        if !loss.is_lost(rng) {
            listener.on_packet(now, &summary);
        }
        for fb in listener.poll_feedback(now) {
            router.on_packet(&fb);
        }
        while let Some(pkt) = router.next_hot_packet() {
            if !loss.is_lost(rng) {
                listener.on_packet(now, &pkt);
            }
        }
    };

    // Phase 1: normal operation with metric churn, one round per 2 s.
    let mut now = SimTime::ZERO;
    for step in 1..=40u64 {
        now = SimTime::from_secs(step * 2);
        if step % 3 == 0 {
            // A link cost changed: update a random route's metric.
            let idx = rng.below(ROUTES as u64) as usize;
            router.update(routes[idx]);
        }
        round(&mut router, &mut listener, now, &mut rng, &mut loss);
    }
    let c = measure_tables(router.table(), listener.replica()).unwrap();
    println!(
        "phase 1 (steady churn, 10% loss): listener tracks {}/{} routes ({:.0}%)",
        listener.replica().len(),
        ROUTES,
        c * 100.0
    );
    assert!(c > 0.9, "listener failed to track the routing table");

    // Phase 2: the router crashes — total silence. Soft-state timers at
    // the listener clean everything up with no teardown protocol.
    println!("\nrouter crashes at t = {now}; no goodbye is sent");
    let silence_end = now + SimDuration::from_secs(TTL_SECS + 10);
    while now < silence_end {
        now += SimDuration::from_secs(5);
        let expired = listener.expire(now);
        if !expired.is_empty() {
            println!("  t = {now}: {} routes expired", expired.len());
        }
    }
    assert!(
        listener.replica().is_empty(),
        "stale routes must expire during silence"
    );
    println!("listener table empty: stale state aged out by itself");

    // Phase 3: the router reboots with fresh state (different metrics).
    // Ordinary protocol operation rebuilds the listener's table.
    println!("\nrouter reboots at t = {now}");
    for r in &routes {
        router.update(*r); // rebooted daemon re-learns its routes
    }
    for step in 1..=30u64 {
        now += SimDuration::from_secs(2);
        round(&mut router, &mut listener, now, &mut rng, &mut loss);
        let _ = step;
        if measure_tables(router.table(), listener.replica()) == Some(1.0) {
            println!(
                "listener fully reconverged {}s after reboot — no special-case recovery code ran",
                step * 2
            );
            return;
        }
    }
    panic!("listener failed to reconverge after reboot");
}
