//! SSTP over real UDP sockets on loopback — no simulator involved.
//!
//! A publisher announces a small table; a subscriber on another ephemeral
//! port converges through genuine datagrams, with 25% of its inbound
//! packets deterministically dropped to force the repair machinery
//! (summaries → queries → NACKs → retransmissions) onto the real wire.
//!
//! ```text
//! cargo run --example udp_live
//! ```

use ss_netsim::{LossSpec, SimDuration};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::ReceiverConfig;
use sstp::udp::{UdpConfig, UdpPublisher, UdpSubscriber};
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    let any = "127.0.0.1:0".parse().unwrap();

    let mut pub_cfg = UdpConfig::loopback(any, any);
    pub_cfg.summary_interval = Duration::from_millis(100);
    let mut publisher = UdpPublisher::bind(&pub_cfg, HashAlgorithm::Fnv64, 512)?;

    let mut sub_cfg = UdpConfig::loopback(any, publisher.local_addr()?);
    sub_cfg.ingress_loss = LossSpec::Bernoulli(0.25); // force loss on loopback
    sub_cfg.seed = 42;
    let mut rcfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
    rcfg.ttl = SimDuration::from_secs(3600);
    rcfg.repair_backoff = SimDuration::from_millis(80);
    let mut subscriber = UdpSubscriber::bind(&sub_cfg, rcfg)?;
    publisher.set_peer(subscriber.local_addr()?);

    println!(
        "publisher {} <-> subscriber {} (25% inbound drop at the subscriber)",
        publisher.local_addr()?,
        subscriber.local_addr()?
    );

    let root = publisher.sender().root();
    let now = publisher.now();
    let n = 40;
    for _ in 0..n {
        publisher.sender_mut().publish(now, root, MetaTag(0));
    }
    println!("published {n} records; driving both ends...\n");

    let start = Instant::now();
    let mut last_print = 0;
    loop {
        publisher.poll()?;
        subscriber.poll()?;
        let held = subscriber.receiver().replica().len();
        if held != last_print {
            println!(
                "  t={:5.0?}ms  subscriber holds {held:2}/{n}  (drops so far: {})",
                start.elapsed().as_millis(),
                subscriber.stats().injected_drops
            );
            last_print = held;
        }
        if held == n {
            break;
        }
        if start.elapsed() > Duration::from_secs(15) {
            eprintln!("did not converge in 15s");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let ps = publisher.stats();
    let ss = subscriber.stats();
    let snd = publisher.sender().stats();
    println!("\nconverged in {:?}", start.elapsed());
    println!(
        "publisher: {} datagrams out ({} data, {} summaries, {} repair responses)",
        ps.datagrams_tx, snd.data_tx, snd.root_summaries_tx, snd.node_summaries_tx
    );
    println!(
        "subscriber: {} datagrams in, {} dropped by injection, {} NACK/query packets sent",
        ss.datagrams_rx,
        ss.injected_drops,
        subscriber.receiver().stats().nacks_sent + subscriber.receiver().stats().queries_sent
    );
    Ok(())
}
