//! Property-based tests over whole SSTP sessions: for arbitrary loss
//! rates, workloads, group sizes, and reliability knobs, the session's
//! counters and metrics must satisfy structural invariants.

use proptest::prelude::*;
use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::{Bandwidth, FaultSpec, SimDuration, SimRng};
use sstp::reliability::ReliabilityLevel;
use sstp::session::{self, SessionConfig, SessionWorkload};

fn arb_reliability() -> impl Strategy<Value = ReliabilityLevel> {
    prop_oneof![
        Just(ReliabilityLevel::BestEffort),
        Just(ReliabilityLevel::AnnounceListen),
        (0.05f64..0.6).prop_map(|s| ReliabilityLevel::Quasi { max_fb_share: s }),
        Just(ReliabilityLevel::Reliable),
    ]
}

fn arb_config() -> impl Strategy<Value = SessionConfig> {
    (
        any::<u64>(), // seed
        0.0f64..0.6,  // loss
        0.2f64..3.0,  // arrival rate
        1usize..5,    // receivers
        arb_reliability(),
        prop::bool::ANY, // lifetimes on/off
        20u64..120,      // bandwidth kbps
    )
        .prop_map(|(seed, loss, rate, n_receivers, level, lifetimes, kbps)| {
            let mut cfg = SessionConfig::unicast_default(seed);
            cfg.total_bandwidth = Bandwidth::from_kbps(kbps);
            cfg.data_loss = LossSpec::Bernoulli(loss);
            cfg.fb_loss = LossSpec::Bernoulli(loss);
            cfg.n_receivers = n_receivers;
            if n_receivers > 1 {
                cfg.slot_window = Some(SimDuration::from_secs(1));
            }
            cfg.allocator.reliability = level.into();
            cfg.workload = SessionWorkload {
                arrivals: ArrivalProcess::Poisson { rate },
                mean_lifetime_secs: lifetimes.then_some(90.0),
                branches: 3,
                class_weights: None,
            };
            cfg.duration = SimDuration::from_secs(120);
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn session_counters_are_structurally_sound(cfg in arb_config()) {
        let report = session::run(&cfg);

        // Consistency metrics are probabilities.
        for rx in &report.receivers {
            let a = rx.consistency;
            prop_assert!((0.0..=1.0).contains(&a.unnormalized));
            prop_assert!((0.0..=1.0).contains(&a.empty_consistent));
            if let Some(b) = a.busy {
                prop_assert!((0.0..=1.0).contains(&b));
            }
            if let Some(f) = rx.final_consistency {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }

        // Delivery accounting: every transmission is received or lost at
        // each receiver, except the handful still in flight when the run
        // ends (at most one per server per receiver plus the propagation
        // pipe).
        let total_rx: u64 = report
            .receivers
            .iter()
            .map(|r| r.stats.data_rx + r.stats.root_summaries_rx + r.stats.node_summaries_rx)
            .sum();
        let accounted = total_rx + report.packets.data_rx_lost;
        let offered = report.packets.data_channel_tx * cfg.n_receivers as u64;
        prop_assert!(
            accounted <= offered,
            "over-delivery: {accounted} > {offered}"
        );
        prop_assert!(
            offered - accounted <= 8 + 4 * cfg.n_receivers as u64,
            "too many unaccounted in-flight packets: {offered} - {accounted}"
        );
        for rx in &report.receivers {
            prop_assert!(rx.stats.data_applied <= rx.stats.data_rx);
        }

        // Sender-side packet counters add up to the data-channel total.
        let s = report.sender;
        prop_assert_eq!(
            s.data_tx + s.root_summaries_tx + s.node_summaries_tx,
            report.packets.data_channel_tx
        );

        // Reliability semantics: no feedback levels never NACK or query.
        let reliability = cfg.allocator.reliability;
        if !reliability.feedback {
            prop_assert_eq!(s.nacks_rx, 0);
            prop_assert_eq!(s.queries_rx, 0);
        }
        if !reliability.summaries {
            prop_assert_eq!(s.root_summaries_tx, 0);
        }

        // The loss estimate is a probability and roughly tracks the truth
        // when any reports flowed.
        prop_assert!((0.0..=1.0).contains(&report.final_loss_estimate));
        if s.reports_rx >= 10 {
            let true_loss = cfg.data_loss.mean();
            prop_assert!(
                (report.final_loss_estimate - true_loss).abs() < 0.25,
                "estimate {} vs true {}",
                report.final_loss_estimate,
                true_loss
            );
        }

        // Allocations always partition the budget.
        for (_, a) in &report.allocations {
            prop_assert_eq!(a.data + a.feedback, cfg.total_bandwidth);
            prop_assert_eq!(a.hot + a.cold, a.data);
        }

        // Latency samples only exist for keys that were actually applied.
        for rx in &report.receivers {
            prop_assert!(rx.latency.count() <= rx.stats.data_applied);
        }
    }

    /// Determinism holds across the whole configuration space.
    #[test]
    fn sessions_are_deterministic(cfg in arb_config()) {
        let a = session::run(&cfg);
        let b = session::run(&cfg);
        prop_assert_eq!(a.packets.data_channel_tx, b.packets.data_channel_tx);
        prop_assert_eq!(a.packets.feedback_tx, b.packets.feedback_tx);
        prop_assert_eq!(a.final_loss_estimate, b.final_loss_estimate);
        for (x, y) in a.receivers.iter().zip(&b.receivers) {
            prop_assert_eq!(x.stats, y.stats);
        }
    }
}

/// Reliability levels with a repair mechanism. `BestEffort` is excluded
/// deliberately: with neither summaries nor feedback there is nothing
/// that can rebuild a crash-wiped replica of a static store, so
/// reconvergence is not a property that level promises.
fn arb_repairing_reliability() -> impl Strategy<Value = ReliabilityLevel> {
    prop_oneof![
        Just(ReliabilityLevel::AnnounceListen),
        (0.05f64..0.6).prop_map(|s| ReliabilityLevel::Quasi { max_fb_share: s }),
        Just(ReliabilityLevel::Reliable),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ss-chaos reconvergence: any generated fault schedule — partitions,
    /// crashes, silence, loss bursts, in any combination — heals into a
    /// fully consistent session within a TTL-derived bound (3×TTL after
    /// the last episode ends), for every reliability level that has a
    /// repair mechanism.
    #[test]
    fn generated_fault_schedules_reconverge(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        loss in 0.0f64..0.25,
        n_receivers in 1usize..4,
        level in arb_repairing_reliability(),
    ) {
        const TTL_SECS: u64 = 120;
        let mut cfg = SessionConfig::unicast_default(seed);
        cfg.data_loss = LossSpec::Bernoulli(loss);
        cfg.fb_loss = LossSpec::Bernoulli(loss);
        cfg.n_receivers = n_receivers;
        if n_receivers > 1 {
            cfg.slot_window = Some(SimDuration::from_secs(1));
        }
        cfg.allocator.reliability = level.into();
        cfg.ttl = SimDuration::from_secs(TTL_SECS);
        cfg.workload = SessionWorkload {
            arrivals: ArrivalProcess::Bulk { count: 20 },
            mean_lifetime_secs: None,
            branches: 3,
            class_weights: None,
        };
        let mut frng = SimRng::new(fault_seed);
        cfg.faults = FaultSpec::generate(
            &mut frng,
            n_receivers as u32,
            SimDuration::from_secs(100),
            3,
        );
        // Run until 3×TTL past the heal point, so "reconverged at all"
        // is exactly "reconverged within the TTL-derived bound".
        let healed = cfg.faults.build(SimRng::new(0)).healed_at();
        cfg.duration = SimDuration::from_micros(healed.as_micros()) + SimDuration::from_secs(3 * TTL_SECS);

        let report = session::run(&cfg);
        let rec = report.recovery.expect("faults configured");
        prop_assert!(
            rec.reconverged_at.is_some(),
            "no reconvergence within 3 TTLs of heal: {:?}", rec
        );
        let mttr = rec.mttr().expect("reconverged implies an MTTR");
        prop_assert!(
            mttr <= SimDuration::from_secs(3 * TTL_SECS),
            "MTTR {:?} exceeds the 3-TTL bound", mttr
        );
        for rx in &report.receivers {
            prop_assert_eq!(rx.final_consistency, Some(1.0));
        }
    }
}
