//! Cross-crate validation: the `ss-queueing` closed forms against the
//! `softstate` discrete-event simulation, including the joint occupancy
//! distribution — the strongest check that the simulator implements the
//! §3 model exactly.

use softstate::protocol::open_loop::{self, OpenLoopConfig};
use ss_netsim::SimDuration;
use ss_queueing::{Mm1, OpenLoop, Transitions};

fn sim(lambda: f64, mu: f64, p_loss: f64, p_death: f64, seed: u64) -> open_loop::OpenLoopReport {
    let mut cfg = OpenLoopConfig::analytic(lambda, mu, p_loss, p_death, seed);
    cfg.duration = SimDuration::from_secs(60_000);
    open_loop::run(&cfg)
}

#[test]
fn class_throughput_ratio_matches_lambda_c_over_lambda_hat() {
    let m = OpenLoop::new(1.5, 12.0, 0.3, 0.3);
    let r = sim(1.5, 12.0, 0.3, 0.3, 21);
    // Redundant transmissions are exactly the consistent-class services:
    // their fraction estimates lambda_C / lambda_hat = q.
    let q_sim = r.redundant_transmissions as f64 / r.transmissions as f64;
    let q = m.consistent_fraction();
    assert!((q_sim - q).abs() < 0.02, "q: sim {q_sim} vs theory {q}");
}

#[test]
fn per_record_service_count_is_one_over_pd() {
    // lambda_hat = lambda / p_d: each record is served 1/p_d times on
    // average before dying.
    let r = sim(1.0, 10.0, 0.2, 0.25, 22);
    let services_per_record = r.transmissions as f64 / r.stats.deaths.max(1) as f64;
    assert!(
        (services_per_record - 4.0).abs() < 0.15,
        "1/p_d = 4 vs {services_per_record}"
    );
}

#[test]
fn occupancy_distribution_is_geometric() {
    // The marginal total-occupancy distribution is geometric with ratio
    // rho (M/M/1); check E[n] and the busy probability.
    let m = OpenLoop::new(2.0, 16.0, 0.2, 0.25);
    let mm1 = Mm1::new(m.lambda_hat(), 16.0);
    let r = sim(2.0, 16.0, 0.2, 0.25, 23);
    assert!(
        (r.stats.mean_live_records - mm1.mean_jobs()).abs() < 0.15,
        "E[n]: sim {} vs {}",
        r.stats.mean_live_records,
        mm1.mean_jobs()
    );
    // Busy probability = rho: measured via the meter's busy fraction
    // proxy — unnormalized/busy consistency ratio.
    let busy_frac = r.stats.consistency.unnormalized / r.stats.consistency.busy.unwrap();
    assert!(
        (busy_frac - m.rho()).abs() < 0.03,
        "P[busy]: sim {busy_frac} vs rho {}",
        m.rho()
    );
}

#[test]
fn transition_frequencies_match_table1_across_parameters() {
    for (p_loss, p_death, seed) in [(0.1, 0.3, 24), (0.5, 0.5, 25), (0.0, 0.2, 26)] {
        let th = Transitions::new(p_loss, p_death);
        let r = sim(1.0, 10.0, p_loss, p_death, seed);
        let (ii, ic, id) = r.transitions.from_inconsistent().unwrap();
        let (cc, cd) = r.transitions.from_consistent().unwrap();
        for (name, a, b) in [
            ("I->I", th.i_to_i, ii),
            ("I->C", th.i_to_c, ic),
            ("I->D", th.i_death, id),
            ("C->C", th.c_to_c, cc),
            ("C->D", th.c_death, cd),
        ] {
            assert!(
                (a - b).abs() < 0.02,
                "{name} at ({p_loss},{p_death}): {a} vs {b}"
            );
        }
    }
}

#[test]
fn latency_matches_mm1_when_lossless() {
    // With no loss and no death-before-delivery complications, T_rec is
    // the M/M/1 sojourn of the first service: E[T] = 1/(mu - lambda_hat)
    // does NOT apply directly (retransmissions share the queue), but for
    // p_death = 1 every record is served exactly once, making the system
    // a true M/M/1 and T_rec its sojourn time.
    let lambda = 2.0;
    let mu = 5.0;
    let mut cfg = OpenLoopConfig::analytic(lambda, mu, 0.0, 1.0, 27);
    cfg.duration = SimDuration::from_secs(60_000);
    let r = open_loop::run(&cfg);
    let want = Mm1::new(lambda, mu).mean_sojourn();
    let got = r.stats.latency.mean().as_secs_f64();
    assert!((got - want).abs() / want < 0.05, "T: sim {got} vs {want}");
}

#[test]
fn waste_scales_with_death_rate() {
    // W = q falls as p_d rises (short-lived records are announced fewer
    // redundant times); verify the ordering analytically and empirically.
    let mut last_theory = 1.0;
    let mut last_sim = 1.0;
    for (i, p_death) in [0.2, 0.4, 0.8].into_iter().enumerate() {
        let th = OpenLoop::new(1.0, 10.0, 0.1, p_death).wasted_bandwidth_fraction();
        let s = sim(1.0, 10.0, 0.1, p_death, 30 + i as u64).wasted_fraction();
        assert!(th < last_theory);
        assert!(s < last_sim + 0.02);
        assert!((th - s).abs() < 0.03, "W({p_death}): {th} vs {s}");
        last_theory = th;
        last_sim = s;
    }
}
