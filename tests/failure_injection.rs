//! Failure injection: the robustness stories from the paper's
//! introduction, driven end to end — receiver crash/restart, network
//! partition and heal, sender silence, and the light-weight-sessions
//! membership narrative ("group membership knowledge that had spanned
//! the partition eventually times out ... the group state quickly
//! converges to accurately track the reformed session").
//!
//! Faults are expressed as `ss_netsim::FaultSpec` episodes — the same
//! plain-data schedule the simulator engines consume — and the harness
//! consults the built `FaultSchedule` each round, so these tests
//! exercise the ss-chaos API surface as well as the endpoints.

use softstate::measure_tables;
use ss_netsim::{Bernoulli, FaultSchedule, FaultSpec, LossModel, SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::{ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;

/// A driver for endpoint pairs over a configurable-loss channel with a
/// scripted fault schedule.
struct Harness {
    tx: SstpSender,
    rx: SstpReceiver,
    loss: Bernoulli,
    rng: SimRng,
    now: SimTime,
    /// The active fault schedule (empty by default).
    faults: FaultSchedule,
}

impl Harness {
    fn new(ttl_secs: u64, p_loss: f64) -> Self {
        let tx = SstpSender::new(HashAlgorithm::Fnv64, 500);
        let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
        cfg.ttl = SimDuration::from_secs(ttl_secs);
        let rng = SimRng::new(2);
        let faults = FaultSpec::none().build(rng.derive("faults"));
        Harness {
            tx,
            rx: SstpReceiver::new(cfg, SimRng::new(1)),
            loss: Bernoulli::new(p_loss),
            rng,
            now: SimTime::ZERO,
            faults,
        }
    }

    /// Installs a fault schedule (episodes at absolute sim times; the
    /// harness clock is at `self.now`).
    fn inject(&mut self, spec: FaultSpec) {
        self.faults = spec.build(self.rng.derive("faults"));
    }

    /// One announce/listen round: expiry sweep, summary, feedback, repair.
    fn round(&mut self) {
        self.now += SimDuration::from_secs(2);
        self.rx.expire(self.now);
        let down = self.faults.receiver_down(self.now, 0);
        let data_ok =
            !self.faults.data_blocked(self.now) && !self.faults.sender_silent(self.now) && !down;
        let fb_ok = !self.faults.feedback_blocked(self.now) && !down;
        let summary = self.tx.summary_packet();
        if data_ok && !self.loss.is_lost(&mut self.rng) && !self.faults.extra_loss(self.now) {
            self.rx.on_packet(self.now, &summary);
        }
        for fb in self.rx.poll_feedback(self.now) {
            if fb_ok && !self.loss.is_lost(&mut self.rng) {
                self.tx.on_packet(&fb);
            }
        }
        while let Some(pkt) = self.tx.next_hot_packet() {
            if data_ok && !self.loss.is_lost(&mut self.rng) && !self.faults.extra_loss(self.now) {
                self.rx.on_packet(self.now, &pkt);
            }
        }
    }

    fn consistency(&self) -> Option<f64> {
        measure_tables(self.tx.table(), self.rx.replica())
    }

    fn rounds_until_consistent(&mut self, max: usize) -> Option<usize> {
        for i in 1..=max {
            self.round();
            if self.consistency() == Some(1.0) {
                return Some(i);
            }
        }
        None
    }
}

#[test]
fn receiver_crash_and_cold_restart_catches_up() {
    let mut h = Harness::new(600, 0.2);
    let root = h.tx.root();
    for _ in 0..25 {
        h.tx.publish(SimTime::ZERO, root, MetaTag(0));
    }
    assert!(
        h.rounds_until_consistent(40).is_some(),
        "initial convergence"
    );

    // The receiver crashes and restarts empty (fresh state, same id).
    let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
    cfg.ttl = SimDuration::from_secs(600);
    h.rx = SstpReceiver::new(cfg, SimRng::new(99));
    assert_eq!(h.consistency(), Some(0.0), "restart wiped the replica");

    // Periodic announcements alone rebuild it — "periodic source
    // announcements allow the receiver to reconstruct the data store
    // following a crash".
    let rounds = h.rounds_until_consistent(60).expect("catch-up after crash");
    assert!(rounds > 0);
}

#[test]
fn partition_expires_state_then_heals() {
    let mut h = Harness::new(20, 0.1);
    let root = h.tx.root();
    for _ in 0..15 {
        h.tx.publish(SimTime::ZERO, root, MetaTag(0));
    }
    assert!(h.rounds_until_consistent(40).is_some());

    // Partition: nothing flows. The receiver's soft state times out.
    // The 40-simulated-second episode dwarfs the 20 s TTL.
    h.inject(FaultSpec::none().partition(h.now, h.now + SimDuration::from_secs(40)));
    for _ in 0..20 {
        h.round();
    }
    assert!(
        h.rx.replica().is_empty(),
        "partitioned replica must expire to empty"
    );

    // Heal (the episode has ended by now): normal protocol operation
    // reconverges, no special recovery.
    assert!(!h.faults.data_blocked(h.now), "episode must be over");
    let rounds = h
        .rounds_until_consistent(60)
        .expect("reconvergence after heal");
    assert!(rounds > 0);
}

#[test]
fn sender_state_churn_during_partition_is_reconciled() {
    let mut h = Harness::new(1_000, 0.0);
    let root = h.tx.root();
    let keys: Vec<_> = (0..20)
        .map(|_| h.tx.publish(SimTime::ZERO, root, MetaTag(0)))
        .collect();
    assert!(h.rounds_until_consistent(20).is_some());

    // During the partition the publisher keeps evolving: half the records
    // are withdrawn, others updated, new ones added.
    h.inject(FaultSpec::none().partition(h.now, h.now + SimDuration::from_secs(6)));
    for k in &keys[..10] {
        h.tx.withdraw(*k);
    }
    for k in &keys[10..15] {
        h.tx.update(*k);
    }
    for _ in 0..5 {
        h.tx.publish(h.now, root, MetaTag(0));
    }
    for _ in 0..3 {
        h.round();
    }
    let c_mid = h.consistency().unwrap();
    assert!(c_mid < 1.0, "divergence during partition: {c_mid}");

    // After healing, digest descent reconciles adds, updates, and
    // tombstones alike. The TTL here is long, so expiry cannot be the
    // mechanism — repair must do it.
    assert!(!h.faults.data_blocked(h.now), "episode must be over");
    assert!(h.rounds_until_consistent(60).is_some(), "reconciliation");
    // Withdrawn records must actually be gone at the receiver.
    for k in &keys[..10] {
        assert!(h.rx.replica().get(*k).is_none(), "{k:?} should be purged");
    }
}

#[test]
fn sender_silence_is_indistinguishable_from_partition() {
    let mut h = Harness::new(20, 0.0);
    let root = h.tx.root();
    for _ in 0..10 {
        h.tx.publish(SimTime::ZERO, root, MetaTag(0));
    }
    assert!(h.rounds_until_consistent(20).is_some());

    // A silent sender refreshes nothing; the receiver's soft state
    // expires on the same clock a partition would impose.
    h.inject(FaultSpec::none().sender_silence(h.now, h.now + SimDuration::from_secs(40)));
    for _ in 0..20 {
        h.round();
    }
    assert!(h.rx.replica().is_empty(), "soft state expired to empty");
    assert!(h.rounds_until_consistent(60).is_some(), "recovery");
}

#[test]
fn extra_loss_episode_delays_but_does_not_prevent_repair() {
    let mut h = Harness::new(10_000, 0.0);
    let root = h.tx.root();
    for _ in 0..20 {
        h.tx.publish(SimTime::ZERO, root, MetaTag(0));
    }
    // A 90%-loss episode covers the whole convergence window: progress
    // is slow but monotone, and once the episode ends the remainder
    // repairs promptly.
    h.inject(FaultSpec::none().extra_loss(
        h.now,
        h.now + SimDuration::from_secs(60),
        ss_netsim::LossSpec::Bernoulli(0.9),
    ));
    let rounds = h
        .rounds_until_consistent(400)
        .expect("eventual convergence under 90% loss episode");
    assert!(
        rounds > 2,
        "90% loss cannot converge in a round or two: {rounds}"
    );
}

#[test]
fn heavy_loss_slows_but_does_not_prevent_convergence() {
    let mut fast = Harness::new(10_000, 0.1);
    let mut slow = Harness::new(10_000, 0.6);
    for h in [&mut fast, &mut slow] {
        let root = h.tx.root();
        for _ in 0..20 {
            h.tx.publish(SimTime::ZERO, root, MetaTag(0));
        }
    }
    let r_fast = fast
        .rounds_until_consistent(200)
        .expect("10% loss converges");
    let r_slow = slow
        .rounds_until_consistent(1000)
        .expect("60% loss converges");
    assert!(
        r_slow >= r_fast,
        "higher loss cannot converge faster: {r_slow} vs {r_fast}"
    );
}
