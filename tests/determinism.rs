//! The double-run reproducibility harness.
//!
//! The claim the `ss-lint` rules exist to protect: every simulation
//! result is a pure function of its configuration and seed. This test
//! drives the Figure 5 two-queue experiment end to end **twice** with the
//! same seed and requires the serialized reports to be byte-identical —
//! not merely "statistically close". Any nondeterminism that creeps in
//! (hash iteration order feeding event order, a wall clock, ambient
//! randomness) breaks the byte comparison long before it would move an
//! average. A different seed must, conversely, produce a different
//! trajectory, proving the comparison has teeth.

use softstate::protocol::two_queue::{run, Sharing, TwoQueueConfig};
use softstate::{ArrivalProcess, DeathProcess, LossSpec, ServiceModel};
use ss_netsim::SimDuration;

/// Tests that toggle process-global knobs (sweep thread count, trace and
/// profile capture) must not interleave: hold this for their full body.
static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Figure 5's workload in packets/s (λ = 1.875/s, μ_data = 5.625/s split
/// 40/60 hot/cold), shortened to keep the double run fast.
fn fig5_cfg(seed: u64) -> TwoQueueConfig {
    let mu_data = 5.625;
    let hot_share = 0.40;
    TwoQueueConfig {
        arrivals: ArrivalProcess::Poisson { rate: 1.875 },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_data * hot_share,
        mu_cold: mu_data * (1.0 - hot_share),
        loss: LossSpec::Bernoulli(0.2),
        service: ServiceModel::Exponential,
        sharing: Sharing::Partitioned,
        seed,
        duration: SimDuration::from_secs(4_000),
        series_spacing: Some(SimDuration::from_secs(100)),
        event_capacity: 0,
        trace_capacity: 0,
    }
}

/// Serializes a report for exact comparison. `Debug` formatting prints
/// every counter, histogram, and the sampled `c(t)` series, so two equal
/// strings mean the full observable state of the runs matched.
fn serialized(seed: u64) -> String {
    format!("{:#?}", run(&fig5_cfg(seed)))
}

#[test]
fn same_seed_is_byte_identical() {
    let a = serialized(11);
    let b = serialized(11);
    assert!(
        a == b,
        "two runs with the same seed diverged; a determinism invariant \
         (D001-D003) has been violated somewhere in the stack"
    );
}

#[test]
fn different_seed_diverges() {
    let a = serialized(11);
    let b = serialized(12);
    assert!(
        a != b,
        "different seeds produced identical trajectories; the seed is \
         not reaching the simulation and the identity check is vacuous"
    );
}

/// The metrics JSONL export (what `results/metrics/fig5.jsonl` is made
/// of) and the typed event trace, serialized for exact comparison.
fn metrics_jsonl(seed: u64) -> (String, String) {
    let mut cfg = fig5_cfg(seed);
    cfg.event_capacity = 1024;
    let report = run(&cfg);
    (report.metrics.to_jsonl(), report.events.to_jsonl())
}

#[test]
fn metrics_export_is_byte_identical_across_double_run() {
    let (m1, e1) = metrics_jsonl(11);
    let (m2, e2) = metrics_jsonl(11);
    assert!(
        m1 == m2,
        "metrics JSONL diverged across a same-seed double run; the \
         registry observed two different trajectories"
    );
    assert!(
        e1 == e2,
        "event-trace JSONL diverged across a same-seed double run"
    );
    // Sanity: the exports carry real content, so equality is not vacuous.
    assert!(m1.contains("\"consistency.c_t\""));
    assert!(e1.lines().count() > 1);
}

#[test]
fn metrics_export_diverges_across_seeds() {
    let (m1, e1) = metrics_jsonl(11);
    let (m2, e2) = metrics_jsonl(12);
    assert!(
        m1 != m2,
        "different seeds produced identical metric exports; the check \
         above is vacuous"
    );
    assert!(e1 != e2, "different seeds produced identical event traces");
}

/// Serializes everything an experiment run can write to disk: the
/// rendered tables (title, columns, every cell the CSV would carry),
/// the metrics JSONL artifacts, the causal-trace artifacts (both
/// export formats), and the dispatched-event total.
fn serialize_all_experiments(fast: bool) -> String {
    let mut out = String::new();
    for e in ss_bench::all_experiments() {
        let output = (e.run)(fast);
        out.push_str(&format!("== {} events={}\n", e.id, output.events));
        for t in &output.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for m in &output.metrics {
            out.push_str(&format!("-- {}\n{}", m.name, m.jsonl));
        }
        for t in &output.traces {
            out.push_str(&format!(
                "-- trace {}\n{}{}",
                t.name, t.chrome_json, t.causal_jsonl
            ));
        }
    }
    out
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_sequential() {
    // The tentpole invariant of the sweep executor: `--threads 1` and
    // `--threads N` produce the same bytes for every table, metrics
    // JSONL, event JSONL, and causal-trace artifact of
    // `--fast --trace all`. Exercised in-process so the comparison
    // covers exactly what the CLI writes.
    let _guard = EXCLUSIVE.lock().unwrap();
    ss_bench::set_trace(true);
    ss_netsim::par::set_threads(1);
    let sequential = serialize_all_experiments(true);
    ss_netsim::par::set_threads(8);
    let parallel = serialize_all_experiments(true);
    ss_netsim::par::set_threads(0);
    ss_bench::set_trace(false);
    assert!(
        sequential == parallel,
        "experiment output diverged between 1 and 8 sweep workers; \
         index-ordered reassembly or per-point seeding is broken"
    );
    // The comparison must not be vacuous: event traces, labeled metrics
    // blocks, quantile-sketch lines, and all four causal-trace artifacts
    // are present.
    assert!(sequential.contains("-- fig5_events"));
    assert!(sequential.contains("\"run\":"));
    assert!(
        sequential.contains("\"type\":\"sketch\""),
        "no quantile-sketch lines in the metrics exports; the 1-vs-8 \
         thread identity no longer covers sketch merging"
    );
    for name in [
        "-- trace fig3_open_loop",
        "-- trace fig5_two_queue",
        "-- trace fig8_feedback",
        "-- trace continuum_sstp",
    ] {
        assert!(sequential.contains(name), "{name} artifact missing");
    }
    assert!(
        sequential.len() > 10_000,
        "suspiciously small serialization"
    );
}

#[test]
fn profiling_never_changes_artifacts_and_reproduces_exactly() {
    // Two invariants of `--profile`: (1) every committed artifact —
    // tables, metrics JSONL, trace exports — is byte-identical with
    // profiling enabled and disabled (wall time stays out of committed
    // outputs); (2) the profile report itself (phase paths and exact
    // event counts, never wall time) is byte-identical across a double
    // run, so `results/profile/*.profile.jsonl` is a stable artifact.
    let _guard = EXCLUSIVE.lock().unwrap();
    ss_bench::set_profile(false);
    let off = serialize_all_experiments(true);

    ss_bench::set_profile(true);
    ss_netsim::profile::take_report(); // drop counts from earlier tests
    let on = serialize_all_experiments(true);
    let first = ss_netsim::profile::take_report();
    let on_again = serialize_all_experiments(true);
    let second = ss_netsim::profile::take_report();
    ss_bench::set_profile(false);

    assert!(
        off == on,
        "enabling the profiler changed a committed artifact; a phase \
         scope is leaking into simulation state or exported bytes"
    );
    assert!(
        off == on_again,
        "second profiled run diverged from baseline"
    );
    assert_eq!(
        first.to_jsonl("all", 0),
        second.to_jsonl("all", 0),
        "profile phase counts diverged across a same-seed double run"
    );
    assert!(
        first.attributed_events() > 0,
        "profiled experiment runs attributed no events; the identity \
         checks above are vacuous"
    );
}

#[test]
fn work_conserving_variant_is_also_byte_identical() {
    // The scheduler path draws from its own RNG streams; cover it too.
    use softstate::protocol::two_queue::Policy;
    let mut cfg = fig5_cfg(7);
    cfg.sharing = Sharing::WorkConserving(Policy::Stride);
    let a = format!("{:#?}", run(&cfg));
    let b = format!("{:#?}", run(&cfg));
    assert!(a == b, "work-conserving run not reproducible");
}
