//! The paper's quantitative claims, asserted end to end against the
//! protocol simulations (full-length versions of these runs back
//! EXPERIMENTS.md; these use shorter horizons with correspondingly loose
//! tolerances).

use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use softstate::protocol::two_queue::{self, Sharing, TwoQueueConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::SimDuration;
use ss_queueing::OpenLoop;

const KBPS: f64 = 1000.0 / 8000.0; // kbps -> 1000-byte packets/s

#[test]
fn abstract_claim_feedback_improves_consistency_dramatically() {
    // "adding feedback dramatically improves data consistency (by up to
    // 55%) without increasing network resource consumption" — at high
    // loss, equal total budget.
    let mk = |fb_share: f64| {
        let mu_tot = 45.0 * KBPS;
        let mu_fb = mu_tot * fb_share;
        let mu_data = mu_tot - mu_fb;
        FeedbackConfig {
            arrivals: ArrivalProcess::Poisson { rate: 15.0 * KBPS },
            death: DeathProcess::PerTransmission { p: 0.1 },
            mu_hot: mu_data * 2.0 / 3.0,
            mu_cold: mu_data / 3.0,
            mu_fb,
            loss: LossSpec::Bernoulli(0.5),
            nack_loss: None,
            service: ServiceModel::Exponential,
            seed: 7,
            duration: SimDuration::from_secs(20_000),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        }
    };
    let open = feedback::run(&mk(0.0));
    let fb = feedback::run(&mk(0.25));
    let c_open = open.stats.consistency.busy.unwrap();
    let c_fb = fb.stats.consistency.busy.unwrap();
    assert!(
        c_fb - c_open > 0.08,
        "feedback gain at 50% loss: {c_fb} - {c_open}"
    );
    // "without increasing network resource consumption": both variants
    // live inside the identical 45 kbps session envelope — the feedback
    // run's data traffic fits its 75% data slice and its NACKs fit the
    // 25% feedback slice, so total channel usage never exceeds what the
    // open-loop run was allowed. (Raw packet counts differ because the
    // open-loop servers idle more; budget, not count, is the resource.)
    let secs = 20_000.0;
    let mu_tot = 45.0 * KBPS;
    assert!(open.transmissions() as f64 <= mu_tot * secs * 1.01);
    assert!(fb.transmissions() as f64 <= 0.75 * mu_tot * secs * 1.01);
    assert!(fb.nacks_delivered as f64 <= 0.25 * mu_tot * secs * 1.01);
}

#[test]
fn section3_stability_condition() {
    // "The solution is valid only when rho < 1, i.e. p_d > lambda/mu."
    let stable = OpenLoop::new(2.0, 16.0, 0.2, 0.25);
    assert!(stable.is_stable());
    let unstable = OpenLoop::new(2.0, 16.0, 0.2, 0.10);
    assert!(!unstable.is_stable());
    // Simulated occupancy at the unstable point keeps growing with the
    // horizon; at the stable point it converges to the closed form.
    let occupancy = |p_death: f64, secs: u64| {
        let mut cfg = OpenLoopConfig::analytic(2.0, 16.0, 0.2, p_death, 1);
        cfg.duration = SimDuration::from_secs(secs);
        open_loop::run(&cfg).stats.mean_live_records
    };
    let stable_short = occupancy(0.25, 10_000);
    let stable_long = occupancy(0.25, 40_000);
    assert!((stable_long - stable.mean_live_records()).abs() < 0.3);
    assert!(
        (stable_long - stable_short).abs() < 0.5,
        "stable occupancy settles"
    );
    let unstable_short = occupancy(0.10, 10_000);
    let unstable_long = occupancy(0.10, 40_000);
    assert!(
        unstable_long > unstable_short * 2.0,
        "unstable backlog must keep growing: {unstable_short} -> {unstable_long}"
    );
}

#[test]
fn section4_knee_and_figure5_range() {
    // "consistency improves by 10% to 40%" (two queues, Figure 5) and
    // "the optimal consistency level is reached for mu_hot >= lambda".
    let mk = |hot_share: f64| TwoQueueConfig {
        arrivals: ArrivalProcess::Poisson { rate: 15.0 * KBPS },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: 45.0 * KBPS * hot_share,
        mu_cold: 45.0 * KBPS * (1.0 - hot_share),
        loss: LossSpec::Bernoulli(0.3),
        service: ServiceModel::Exponential,
        sharing: Sharing::Partitioned,
        seed: 8,
        duration: SimDuration::from_secs(20_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    };
    let lambda_share = 15.0 / 45.0;
    let below = two_queue::run(&mk(lambda_share * 0.4));
    let at = two_queue::run(&mk(lambda_share * 1.3));
    let above = two_queue::run(&mk(lambda_share * 2.2));
    let (cb, ca, cu) = (
        below.stats.consistency.busy.unwrap(),
        at.stats.consistency.busy.unwrap(),
        above.stats.consistency.busy.unwrap(),
    );
    assert!(
        ca - cb > 0.10,
        "crossing the knee gains >=10%: {cb} -> {ca}"
    );
    assert!(
        (cu - ca).abs() < 0.08,
        "beyond the knee is flat: {ca} vs {cu}"
    );
}

#[test]
fn figure3_text_claim_consistency_band() {
    // "the system consistency lies between 85% and 95% for loss rates in
    // the 1-10% range and an announcement death rate of 15%" — checked
    // against the busy-conditioned closed form (DESIGN.md discusses the
    // unnormalized variant's saturation at these parameters).
    for p_loss in [0.01, 0.05, 0.10] {
        let c = OpenLoop::new(2.5, 16.0, p_loss, 0.15).consistency_busy();
        assert!(
            (0.82..=0.95).contains(&c),
            "c({p_loss}) = {c} outside the paper's band"
        );
    }
}

#[test]
fn figure4_text_claim_waste_band() {
    // "At loss rates between 0-20% and an announcement death rate of 10%,
    // about 90% of the total available bandwidth is wasted."
    for p_loss in [0.0, 0.1, 0.2] {
        let w = OpenLoop::new(2.5, 16.0, p_loss, 0.10).wasted_bandwidth_fraction();
        assert!((0.85..=0.91).contains(&w), "W({p_loss}) = {w}");
    }
}

#[test]
fn conclusion_claim_aging_plus_feedback_range() {
    // "consistency improves by 10-40% by appropriately aging data items"
    // + "in combination with receiver feedback ... improves consistency
    // by 12-50%": single-queue open loop vs two-queue vs feedback at the
    // same total bandwidth and 40% loss.
    let mu_tot = 45.0 * KBPS;
    let mut single = OpenLoopConfig::analytic(15.0 * KBPS, mu_tot, 0.4, 0.1, 9);
    single.duration = SimDuration::from_secs(20_000);
    let c_single = open_loop::run(&single).stats.consistency.busy.unwrap();

    let two = TwoQueueConfig {
        arrivals: ArrivalProcess::Poisson { rate: 15.0 * KBPS },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_tot * 2.0 / 3.0,
        mu_cold: mu_tot / 3.0,
        loss: LossSpec::Bernoulli(0.4),
        service: ServiceModel::Exponential,
        sharing: Sharing::Partitioned,
        seed: 9,
        duration: SimDuration::from_secs(20_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    };
    let c_two = two_queue::run(&two).stats.consistency.busy.unwrap();

    let fbc = FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: 15.0 * KBPS },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: mu_tot * 0.8 * 2.0 / 3.0,
        mu_cold: mu_tot * 0.8 / 3.0,
        mu_fb: mu_tot * 0.2,
        loss: LossSpec::Bernoulli(0.4),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 9,
        duration: SimDuration::from_secs(20_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 0,
    };
    let c_fb = feedback::run(&fbc).stats.consistency.busy.unwrap();

    // The ordering the conclusion describes. The single-queue system at
    // these (paper) parameters is saturated, so aging helps by giving new
    // data a protected lane.
    assert!(c_two > c_single, "aging helps: {c_single} -> {c_two}");
    assert!(c_fb > c_two, "feedback helps further: {c_two} -> {c_fb}");
    assert!(
        c_fb - c_single >= 0.10,
        "combined gain >= 10%: {c_single} -> {c_fb}"
    );
}
