//! End-to-end integration: full SSTP sessions over the simulated network,
//! spanning netsim, sched, queueing, softstate, and sstp.

use softstate::{ArrivalProcess, LossSpec};
use ss_netsim::{Bandwidth, SimDuration};
use sstp::reliability::ReliabilityLevel;
use sstp::session::{self, SessionConfig, SessionWorkload};

fn quick(seed: u64) -> SessionConfig {
    let mut cfg = SessionConfig::unicast_default(seed);
    cfg.duration = SimDuration::from_secs(300);
    cfg
}

#[test]
fn session_is_deterministic_across_runs() {
    let a = session::run(&quick(1));
    let b = session::run(&quick(1));
    assert_eq!(a.packets.data_channel_tx, b.packets.data_channel_tx);
    assert_eq!(a.packets.feedback_tx, b.packets.feedback_tx);
    assert_eq!(a.sender.data_tx, b.sender.data_tx);
    assert_eq!(a.final_loss_estimate, b.final_loss_estimate);
    assert_eq!(
        a.receivers[0].stats.data_applied,
        b.receivers[0].stats.data_applied
    );
}

#[test]
fn different_seeds_differ() {
    let a = session::run(&quick(1));
    let b = session::run(&quick(2));
    assert_ne!(
        (a.packets.data_channel_tx, a.receivers[0].stats.data_applied),
        (b.packets.data_channel_tx, b.receivers[0].stats.data_applied)
    );
}

#[test]
fn consistency_degrades_gracefully_with_loss() {
    let mut last = 1.1;
    for loss in [0.0, 0.2, 0.5] {
        let mut cfg = quick(3);
        cfg.data_loss = LossSpec::Bernoulli(loss);
        cfg.fb_loss = LossSpec::Bernoulli(loss);
        let c = session::run(&cfg).mean_consistency();
        assert!(
            c <= last + 0.05,
            "consistency should not improve with loss: c({loss}) = {c}, prev {last}"
        );
        assert!(c > 0.3, "even at 50% loss the session must limp along: {c}");
        last = c;
    }
}

#[test]
fn reliability_levels_order_feedback_traffic() {
    let mut counts = Vec::new();
    for level in [
        ReliabilityLevel::BestEffort,
        ReliabilityLevel::AnnounceListen,
        ReliabilityLevel::Quasi { max_fb_share: 0.4 },
    ] {
        let mut cfg = quick(4);
        cfg.allocator.reliability = level.into();
        cfg.data_loss = LossSpec::Bernoulli(0.3);
        let r = session::run(&cfg);
        counts.push((r.receivers[0].stats.nacks_sent, r.mean_consistency()));
    }
    // Only the quasi level NACKs; it also wins on consistency.
    assert_eq!(counts[0].0, 0);
    assert_eq!(counts[1].0, 0);
    assert!(counts[2].0 > 0);
    assert!(counts[2].1 >= counts[0].1 - 0.02);
}

#[test]
fn bursty_and_bernoulli_loss_both_converge() {
    for loss in [
        LossSpec::Bernoulli(0.25),
        LossSpec::Bursty {
            mean: 0.25,
            burst_len: 6.0,
        },
    ] {
        let mut cfg = quick(5);
        cfg.data_loss = loss;
        let c = session::run(&cfg).mean_consistency();
        assert!(c > 0.6, "{loss:?} gave consistency {c}");
    }
}

#[test]
fn gilbert_burst_loss_is_repaired_by_feedback() {
    let mut open = quick(6);
    open.allocator.reliability = ReliabilityLevel::AnnounceListen.into();
    open.data_loss = LossSpec::Bursty {
        mean: 0.3,
        burst_len: 10.0,
    };
    let mut fb = open.clone();
    fb.allocator.reliability = ReliabilityLevel::Quasi { max_fb_share: 0.5 }.into();
    let c_open = session::run(&open).mean_consistency();
    let c_fb = session::run(&fb).mean_consistency();
    assert!(
        c_fb > c_open,
        "feedback must help under burst loss: {c_fb} vs {c_open}"
    );
}

#[test]
fn tiny_bandwidth_overload_reports_backpressure() {
    let mut cfg = quick(7);
    cfg.total_bandwidth = Bandwidth::from_kbps(10);
    cfg.workload = SessionWorkload {
        arrivals: ArrivalProcess::Poisson { rate: 5.0 }, // 40 kbps demand
        mean_lifetime_secs: Some(60.0),
        branches: 2,
        class_weights: None,
    };
    let r = session::run(&cfg);
    assert!(
        r.rate_warnings > 0,
        "allocator must signal the app to slow down"
    );
}

#[test]
fn multicast_group_converges_with_damping() {
    let mut cfg = quick(8);
    cfg.n_receivers = 5;
    cfg.slot_window = Some(SimDuration::from_secs(1));
    cfg.data_loss = LossSpec::Bernoulli(0.2);
    cfg.workload.arrivals = ArrivalProcess::Poisson { rate: 1.0 };
    let r = session::run(&cfg);
    assert_eq!(r.receivers.len(), 5);
    for (i, rx) in r.receivers.iter().enumerate() {
        let c = rx.consistency.busy.unwrap_or(0.0);
        assert!(c > 0.6, "receiver {i} consistency {c}");
    }
    let total_damped: u64 = r.receivers.iter().map(|x| x.stats.damped).sum();
    assert!(
        total_damped > 0,
        "a 5-receiver group should damp duplicates"
    );
}

#[test]
fn md5_and_fnv_namespaces_interoperate_within_algorithm() {
    use sstp::digest::HashAlgorithm;
    for algo in [HashAlgorithm::Fnv64, HashAlgorithm::Md5] {
        let mut cfg = quick(9);
        cfg.algo = algo;
        cfg.duration = SimDuration::from_secs(200);
        let r = session::run(&cfg);
        assert!(
            r.mean_consistency() > 0.6,
            "{algo:?} session consistency {}",
            r.mean_consistency()
        );
    }
}
