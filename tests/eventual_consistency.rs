//! Property-based tests of the paper's central qualitative claim:
//! announce/listen over a lossy channel is *eventually consistent* —
//! "for a static input at the source ... eventually the receiver's state
//! will match the sender's once all the records have been successfully
//! transmitted" (§2.1).

use proptest::prelude::*;
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::{SimDuration, SimRng, SimTime};
use sstp::digest::HashAlgorithm;
use sstp::namespace::MetaTag;
use sstp::receiver::{ReceiverConfig, SstpReceiver};
use sstp::sender::SstpSender;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Open-loop announce/listen with a static table and no deaths
    /// delivers every record, for any loss rate strictly below 1 and any
    /// seed, given enough time.
    #[test]
    fn open_loop_eventually_consistent(
        seed in 0u64..1_000,
        count in 1u64..40,
        p_loss in 0.0f64..0.9,
    ) {
        let cfg = OpenLoopConfig {
            arrivals: ArrivalProcess::Bulk { count },
            death: DeathProcess::Immortal,
            mu: 50.0,
            loss: LossSpec::Bernoulli(p_loss),
            service: ServiceModel::Deterministic,
            seed,
            // Generous horizon: E[attempts per record] = 1/(1-p) <= 10.
            duration: SimDuration::from_secs(60 + count * 20),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let report = open_loop::run(&cfg);
        prop_assert_eq!(report.stats.latency.count(), count, "all records delivered");
        prop_assert_eq!(report.stats.final_live, count as usize);
    }

    /// SSTP's recursive-descent repair reconverges from an arbitrary loss
    /// pattern over the initial transmissions, for any seed and store
    /// shape, in a bounded number of lossless summary rounds.
    #[test]
    fn sstp_repair_always_converges(
        seed in 0u64..1_000,
        n in 1usize..60,
        branches in 1usize..6,
        drop_mask in any::<u64>(),
    ) {
        let mut tx = SstpSender::new(HashAlgorithm::Fnv64, 500);
        let root = tx.root();
        let parents: Vec<_> = (0..branches)
            .map(|i| tx.add_branch(root, MetaTag(i as u32)))
            .collect();
        for i in 0..n {
            tx.publish(SimTime::ZERO, parents[i % branches], MetaTag((i % branches) as u32));
        }
        let mut cfg = ReceiverConfig::unicast(0, HashAlgorithm::Fnv64);
        cfg.ttl = SimDuration::from_secs(1_000_000);
        cfg.repair_backoff = SimDuration::from_millis(1);
        let mut rx = SstpReceiver::new(cfg, SimRng::new(seed));

        // Drop initial transmissions per the mask bits.
        let mut i = 0;
        while let Some(pkt) = tx.next_hot_packet() {
            if drop_mask & (1 << (i % 64)) == 0 {
                rx.on_packet(SimTime::ZERO, &pkt);
            }
            i += 1;
        }

        // Lossless repair rounds.
        let mut now = SimTime::from_secs(1);
        for _ in 0..20 {
            if softstate::measure_tables(tx.table(), rx.replica()) == Some(1.0) {
                break;
            }
            now += SimDuration::from_secs(1);
            rx.on_packet(now, &tx.summary_packet());
            loop {
                let fb = rx.poll_feedback(now);
                if fb.is_empty() {
                    break;
                }
                for p in &fb {
                    tx.on_packet(p);
                }
                while let Some(p) = tx.next_hot_packet() {
                    rx.on_packet(now, &p);
                }
            }
        }
        prop_assert_eq!(
            softstate::measure_tables(tx.table(), rx.replica()),
            Some(1.0),
            "repair must converge for any loss pattern"
        );
    }

    /// The §2.1 consistency metric is always a probability, whatever the
    /// protocol and parameters.
    #[test]
    fn consistency_always_in_unit_interval(
        seed in 0u64..500,
        p_loss in 0.0f64..1.0,
        p_death in 0.05f64..0.9,
        lambda in 0.1f64..4.0,
    ) {
        let mut cfg = OpenLoopConfig::analytic(lambda, 8.0, p_loss, p_death, seed);
        cfg.duration = SimDuration::from_secs(2_000);
        let r = open_loop::run(&cfg);
        let a = r.stats.consistency;
        prop_assert!((0.0..=1.0).contains(&a.unnormalized));
        prop_assert!((0.0..=1.0).contains(&a.empty_consistent));
        if let Some(b) = a.busy {
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(a.unnormalized <= b + 1e-9, "unnormalized <= busy");
        }
        prop_assert!(a.empty_consistent + 1e-9 >= a.unnormalized);
        // Waste is a fraction too.
        prop_assert!((0.0..=1.0).contains(&r.wasted_fraction()));
    }
}
