//! ss-chaos soak: seeded random fault schedules thrown at every engine
//! — the three core protocol simulators and the full SSTP session — with
//! two invariants checked per (engine, seed):
//!
//! 1. **Eventual reconvergence.** A static store whose schedule heals
//!    well before the end of the run ends fully consistent: soft-state
//!    refresh plus repair recovers from any partition, crash, silence,
//!    or loss episode with no special-case recovery code.
//! 2. **Bit-for-bit replayability.** Re-running the same seeded
//!    schedule reproduces every float and counter exactly — including
//!    the MTTR and stale-serve figures — and for the session, a traced
//!    run reproduces the untraced run's numbers (tracing consumes no
//!    randomness).
//!
//! CI runs both seeds; the schedule horizon leaves a generous heal tail
//! so the asserts are about *mechanism*, not racing the clock.

use softstate::protocol::two_queue::Sharing;
use softstate::protocol::{feedback, open_loop, two_queue, LossSpec};
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::{FaultSpec, SimDuration, SimRng};
use sstp::session::{self, SessionConfig, SessionWorkload};

/// The CI soak seeds. Each drives an independent generated schedule.
const SEEDS: [u64; 2] = [11, 47];

/// A generated schedule whose last episode ends by ~125 s (horizon 100 s,
/// max episode length horizon/4), leaving the rest of the run to heal.
fn schedule(seed: u64, n_receivers: u32) -> FaultSpec {
    let mut rng = SimRng::new(seed);
    FaultSpec::generate(&mut rng, n_receivers, SimDuration::from_secs(100), 4)
}

#[test]
fn open_loop_soak_reconverges_and_replays() {
    for seed in SEEDS {
        let cfg = open_loop::OpenLoopConfig {
            arrivals: ArrivalProcess::Bulk { count: 25 },
            death: DeathProcess::Immortal,
            mu: 10.0,
            loss: LossSpec::Bernoulli(0.1),
            service: ServiceModel::Deterministic,
            seed,
            duration: SimDuration::from_secs(400),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let faults = schedule(seed, 1);
        let a = open_loop::run_faulted(&cfg, &faults);
        // Reconvergence: every record is delivered (possibly again after
        // a crash wipe) and the store ends fully consistent.
        assert_eq!(a.stats.final_live, 25, "seed {seed}: all records live");
        // A crash episode wipes the replica and every record is delivered
        // again, so the count is a multiple of the store size — never less.
        assert!(
            a.stats.latency.count() >= 25,
            "seed {seed}: every record delivered"
        );
        let busy = a.stats.consistency.busy.expect("store is never empty");
        assert!(busy > 0.5, "seed {seed}: busy consistency {busy}");
        // Replay: exact.
        let b = open_loop::run_faulted(&cfg, &faults);
        assert_eq!(a.transmissions, b.transmissions, "seed {seed}");
        assert_eq!(a.fault_drops, b.fault_drops, "seed {seed}");
        assert_eq!(
            a.stats.consistency.unnormalized.to_bits(),
            b.stats.consistency.unnormalized.to_bits(),
            "seed {seed}"
        );
        assert_eq!(a.metrics, b.metrics, "seed {seed}: full snapshot");
    }
}

#[test]
fn two_queue_soak_reconverges_and_replays() {
    for seed in SEEDS {
        let cfg = two_queue::TwoQueueConfig {
            arrivals: ArrivalProcess::Bulk { count: 25 },
            death: DeathProcess::Immortal,
            mu_hot: 8.0,
            mu_cold: 6.0,
            loss: LossSpec::Bernoulli(0.1),
            service: ServiceModel::Deterministic,
            sharing: Sharing::Partitioned,
            seed,
            duration: SimDuration::from_secs(400),
            series_spacing: None,
            event_capacity: 0,
            trace_capacity: 0,
        };
        let faults = schedule(seed, 1);
        let a = two_queue::run_faulted(&cfg, &faults);
        assert_eq!(a.stats.final_live, 25, "seed {seed}");
        assert!(a.stats.latency.count() >= 25, "seed {seed}");
        assert!(
            a.stats.consistency.busy.expect("never empty") > 0.5,
            "seed {seed}"
        );
        let b = two_queue::run_faulted(&cfg, &faults);
        assert_eq!(a.hot_transmissions, b.hot_transmissions, "seed {seed}");
        assert_eq!(a.cold_transmissions, b.cold_transmissions, "seed {seed}");
        assert_eq!(a.fault_drops, b.fault_drops, "seed {seed}");
        assert_eq!(a.metrics, b.metrics, "seed {seed}: full snapshot");
    }
}

#[test]
fn feedback_soak_reconverges_and_replays() {
    for seed in SEEDS {
        let cfg = feedback::FeedbackConfig {
            arrivals: ArrivalProcess::Bulk { count: 25 },
            death: DeathProcess::Immortal,
            mu_hot: 8.0,
            mu_cold: 4.0,
            mu_fb: 4.0,
            loss: LossSpec::Bernoulli(0.15),
            nack_loss: None,
            service: ServiceModel::Deterministic,
            seed,
            duration: SimDuration::from_secs(400),
            series_spacing: None,
            trace_capacity: 0,
            event_capacity: 0,
        };
        let faults = schedule(seed, 1);
        let a = feedback::run_faulted(&cfg, &faults);
        assert_eq!(a.stats.final_live, 25, "seed {seed}");
        assert!(a.stats.latency.count() >= 25, "seed {seed}");
        assert!(
            a.stats.consistency.busy.expect("never empty") > 0.5,
            "seed {seed}"
        );
        let b = feedback::run_faulted(&cfg, &faults);
        assert_eq!(a.nacks_generated, b.nacks_generated, "seed {seed}");
        assert_eq!(a.promotions, b.promotions, "seed {seed}");
        assert_eq!(a.fault_drops, b.fault_drops, "seed {seed}");
        assert_eq!(a.metrics, b.metrics, "seed {seed}: full snapshot");
    }
}

/// A static-store session under a generated schedule: reconverges after
/// the heal, and the recovery report (MTTR, stale serves, fault drops)
/// is byte-identical across reruns and across traced/untraced runs.
#[test]
fn session_soak_reconverges_and_replays() {
    for seed in SEEDS {
        let mut cfg = SessionConfig::unicast_default(seed);
        cfg.n_receivers = 2;
        cfg.slot_window = Some(SimDuration::from_secs(1));
        cfg.workload = SessionWorkload {
            arrivals: ArrivalProcess::Bulk { count: 20 },
            mean_lifetime_secs: None,
            branches: 3,
            class_weights: None,
        };
        cfg.ttl = SimDuration::from_secs(100_000);
        cfg.data_loss = LossSpec::Bernoulli(0.1);
        cfg.fb_loss = LossSpec::Bernoulli(0.1);
        cfg.duration = SimDuration::from_secs(500);
        cfg.faults = schedule(seed, 2);

        let a = session::run(&cfg);
        let rec = a.recovery.expect("schedule configured");
        assert!(
            rec.reconverged_at.is_some(),
            "seed {seed}: session must reconverge, report {rec:?}"
        );
        assert!(
            rec.fault_drops > 0,
            "seed {seed}: episodes must actually kill traffic"
        );
        for (i, rx) in a.receivers.iter().enumerate() {
            assert_eq!(
                rx.final_consistency,
                Some(1.0),
                "seed {seed}: receiver {i} fully consistent at end"
            );
        }

        // Rerun: the recovery report and the whole snapshot replay.
        let b = session::run(&cfg);
        assert_eq!(a.recovery, b.recovery, "seed {seed}");
        assert_eq!(a.metrics, b.metrics, "seed {seed}");

        // Traced run: same numbers, plus fault spans in the trace.
        let mut traced_cfg = cfg.clone();
        traced_cfg.trace_capacity = 600_000;
        let t = session::run(&traced_cfg);
        assert_eq!(a.recovery, t.recovery, "seed {seed}: tracing is free");
        assert_eq!(
            a.metrics, t.metrics,
            "seed {seed}: traced metrics identical"
        );

        // Cross-check the report against the trace itself: every
        // fault-attributed loss leaves a "fault"-labeled drop instant, so
        // when the trace kept everything the count must equal the
        // report's fault_drops exactly — the two observability layers
        // audit each other.
        let jsonl = t.trace.to_causal_jsonl();
        assert!(
            jsonl.contains("\"actor\":\"fault-injector\""),
            "seed {seed}: fault episodes painted as spans"
        );
        assert!(
            jsonl.contains("{\"dropped_events\":0}"),
            "seed {seed}: trace capacity must hold the whole run"
        );
        let traced_fault_drops = jsonl
            .lines()
            .filter(|l| l.contains("\"kind\":\"drop\"") && l.contains("\"label\":\"fault\""))
            .count() as u64;
        assert_eq!(
            traced_fault_drops, rec.fault_drops,
            "seed {seed}: trace and recovery report disagree on fault drops"
        );
    }
}
