//! The ss-trace cross-check: lifecycle metrics recomputed **from the
//! causal trace alone** must equal the `ss-metrics` registry values the
//! protocols published while running — exactly, not approximately.
//!
//! Two full experiments are covered, one per protocol family named in
//! the acceptance criteria: the open-loop publisher (Figure 3's
//! workload) and the NACK-feedback protocol (Figure 7's machinery).
//! For each, [`LifecycleAnalysis`] replays the trace's Birth / Deliver
//! / Update / Expire events and the test asserts:
//!
//! * integer equality of the lifecycle counters and the `T_rec`
//!   histogram (count and exact mean) against the snapshot;
//! * bit-for-bit equality of the replayed `c(t)` and live-set time
//!   averages (the replay performs the identical float operation
//!   sequence);
//! * that per-key inconsistency intervals are internally consistent
//!   with what they recompute: one recovered interval per delivery.
//!
//! The two observability layers audit each other; drift in either one
//! turns these equalities into failures.

use softstate::protocol::feedback::{self, FeedbackConfig};
use softstate::protocol::open_loop::{self, OpenLoopConfig};
use softstate::protocol::LossSpec;
use softstate::{ArrivalProcess, DeathProcess, ServiceModel};
use ss_netsim::trace::LifecycleAnalysis;
use ss_netsim::{MetricsSnapshot, SimDuration, SimTime, Tracer};

/// Runs the shared assertions for one (trace, snapshot) pair.
fn crosscheck(trace: &Tracer, snapshot: &MetricsSnapshot, end: SimTime) {
    // The replay is only exact if the tracer kept every event.
    assert_eq!(trace.dropped(), 0, "trace capacity too small for the run");
    let a = LifecycleAnalysis::from_tracer(trace, end);

    // Counters, recomputed from the trace, vs the registry: exact.
    assert_eq!(a.births, snapshot.counter("records.arrivals"));
    assert_eq!(a.deliveries, snapshot.counter("records.delivered"));
    assert_eq!(a.expiries, snapshot.counter("records.deaths"));
    assert_eq!(a.updates, snapshot.counter("records.updates"));

    // T_rec distribution: same sample count and exact mean.
    let h = snapshot.histogram("latency.t_rec");
    assert_eq!(a.t_rec.count(), h.count);
    assert_eq!(a.t_rec.mean().as_micros(), h.mean_us);

    // The replayed time averages are bit-identical, not just close:
    // the analysis feeds the identical sample sequence through the
    // same accumulator type.
    let c = a.replay_c_t(SimTime::ZERO, SimDuration::ZERO, end);
    assert_eq!(
        c.to_bits(),
        snapshot.time_average("consistency.c_t").to_bits()
    );
    let live = a.replay_live(SimTime::ZERO, end);
    assert_eq!(
        live.to_bits(),
        snapshot.time_average("records.live").to_bits()
    );

    // Interval bookkeeping: exactly one recovered interval per
    // delivery, and every interval is well-formed.
    let recovered = a.intervals.iter().filter(|iv| iv.recovered).count() as u64;
    assert_eq!(recovered, a.deliveries);
    for iv in &a.intervals {
        assert!(iv.from <= iv.to, "inverted interval {iv:?}");
        assert!(iv.to <= end);
    }
    // Non-vacuousness: the run actually exercised the lifecycle.
    assert!(a.births > 100, "births {}", a.births);
    assert!(a.deliveries > 100, "deliveries {}", a.deliveries);
}

#[test]
fn open_loop_trace_matches_registry_exactly() {
    // Figure 3's workload at a lossy, stable operating point.
    let mut cfg = OpenLoopConfig::analytic(1.875, 12.0, 0.4, 0.25, 3);
    cfg.duration = SimDuration::from_secs(4_000);
    cfg.trace_capacity = 400_000;
    let report = open_loop::run(&cfg);
    let end = SimTime::ZERO + cfg.duration;
    crosscheck(&report.trace, &report.metrics, end);
}

#[test]
fn feedback_trace_matches_registry_exactly() {
    // The Figure 7 machinery: losses trigger NACKs, promotions, and
    // hot-queue retransmissions, all of which land in the trace.
    let cfg = FeedbackConfig {
        arrivals: ArrivalProcess::Poisson { rate: 1.875 },
        death: DeathProcess::PerTransmission { p: 0.1 },
        mu_hot: 2.5,
        mu_cold: 1.25,
        mu_fb: 1.5,
        loss: LossSpec::Bernoulli(0.4),
        nack_loss: None,
        service: ServiceModel::Exponential,
        seed: 9,
        duration: SimDuration::from_secs(4_000),
        series_spacing: None,
        event_capacity: 0,
        trace_capacity: 400_000,
    };
    let report = feedback::run(&cfg);
    let end = SimTime::ZERO + cfg.duration;
    crosscheck(&report.trace, &report.metrics, end);
}
