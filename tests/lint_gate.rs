//! Makes the determinism lint load-bearing under plain `cargo test`:
//! the suite fails if any workspace source violates rules D001-D004,
//! even when `cargo run -p ss-lint` is not wired into the local loop.

#[test]
fn workspace_is_lint_clean() {
    let root = ss_lint::workspace_root();
    let diagnostics = ss_lint::scan_workspace(&root).expect("scan workspace sources");
    assert!(
        diagnostics.is_empty(),
        "determinism lint violations:\n{}",
        diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
